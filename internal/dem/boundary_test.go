package dem_test

import (
	"testing"

	"caliqec/internal/circuit"
	"caliqec/internal/decoder"
	"caliqec/internal/dem"
)

// External test package: these cases chase the DEM through decoder.BuildGraph
// and a live decode, which package dem itself cannot import. They pin the
// detector-stream boundary conditions the stream pipeline feeds the decoder:
// frames with no fired detectors, frames firing the maximum detector index,
// and models with no observables at all.

// chainCode is a 3-qubit repetition-code round: 6 detectors, 1 observable.
func chainCode(p, q float64) *circuit.Circuit {
	b := circuit.NewBuilder(5)
	b.Reset(0, 0, 1, 2)
	var prev []int
	for r := 0; r < 2; r++ {
		b.XError(p, 0, 1, 2)
		b.Reset(0, 3, 4)
		b.CX(0, 3, 1, 3)
		b.CX(1, 4, 2, 4)
		recs := b.M(q, 3, 4)
		if r == 0 {
			b.Detector(recs[0])
			b.Detector(recs[1])
		} else {
			b.Detector(prev[0], recs[0])
			b.Detector(prev[1], recs[1])
		}
		prev = recs
	}
	dr := b.M(0, 0, 1, 2)
	b.Detector(prev[0], dr[0], dr[1])
	b.Detector(prev[1], dr[1], dr[2])
	b.Observable(0, dr[0])
	return b.Build()
}

// TestZeroDetectorModel: a noisy circuit that declares observables but no
// detectors extracts to detector-free logical mechanisms, which
// BuildGraph must refuse — no decoder can see such an error — while a truly
// empty model (no detectors, no visible mechanisms) builds a graph whose
// only legal frame, the empty syndrome, predicts no flips.
func TestZeroDetectorModel(t *testing.T) {
	b := circuit.NewBuilder(1)
	b.Reset(0, 0)
	b.XError(1e-3, 0)
	r := b.M(0, 0)
	b.Observable(0, r[0])
	m, err := dem.FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDetectors != 0 || m.NumObs != 1 {
		t.Fatalf("detectors=%d obs=%d, want 0/1", m.NumDetectors, m.NumObs)
	}
	for _, mech := range m.Mechanisms {
		if len(mech.Detectors) != 0 {
			t.Fatalf("mechanism %v has detectors in a zero-detector model", mech)
		}
	}
	if _, err := decoder.BuildGraph(m); err == nil {
		t.Fatal("BuildGraph accepted an undetectable logical error mechanism")
	}

	// Noise-free variant: zero detectors, zero mechanisms — decodable, and
	// the empty frame maps to the zero prediction.
	b2 := circuit.NewBuilder(1)
	b2.Reset(0, 0)
	r2 := b2.M(0, 0)
	b2.Observable(0, r2[0])
	m2, err := dem.FromCircuit(b2.Build())
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumDetectors != 0 || len(m2.Mechanisms) != 0 {
		t.Fatalf("detectors=%d mechanisms=%d, want 0/0", m2.NumDetectors, len(m2.Mechanisms))
	}
	g, err := decoder.BuildGraph(m2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []decoder.DecoderKind{decoder.KindUnionFind, decoder.KindGreedy} {
		if got := decoder.New(kind, g).Decode(nil); got != 0 {
			t.Fatalf("kind %v: empty syndrome predicted mask %b", kind, got)
		}
	}
}

// TestEmptyObservableSet: detectors without any observable declaration give
// NumObs == 0; every mechanism's mask is empty and every decode returns 0.
func TestEmptyObservableSet(t *testing.T) {
	b := circuit.NewBuilder(2)
	b.Reset(0, 0, 1)
	b.XError(2e-3, 0)
	b.CX(0, 1)
	r := b.M(1e-3, 1)
	b.Detector(r[0])
	m, err := dem.FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumObs != 0 || m.NumDetectors != 1 {
		t.Fatalf("detectors=%d obs=%d, want 1/0", m.NumDetectors, m.NumObs)
	}
	for _, mech := range m.Mechanisms {
		if mech.ObsMask != 0 {
			t.Fatalf("mechanism %v flips an observable in an observable-free model", mech)
		}
	}
	g, err := decoder.BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := decoder.New(decoder.KindUnionFind, g).Decode([]int{0}); got != 0 {
		t.Fatalf("observable-free decode returned mask %b", got)
	}
}

// TestMaxIndexDetector: the highest-numbered detector participates in the
// model, and a frame firing exactly that detector decodes without touching
// out-of-range state.
func TestMaxIndexDetector(t *testing.T) {
	c := chainCode(1e-3, 1e-3)
	m, err := dem.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	top := m.NumDetectors - 1
	seen := false
	for _, mech := range m.Mechanisms {
		for _, d := range mech.Detectors {
			if d < 0 || d >= m.NumDetectors {
				t.Fatalf("mechanism %v has out-of-range detector", mech)
			}
			if d == top {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatalf("no mechanism touches the top detector %d", top)
	}
	g, err := decoder.BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	dec := decoder.New(decoder.KindUnionFind, g)
	if got := dec.Decode([]int{top}); got>>uint(m.NumObs) != 0 {
		t.Fatalf("prediction %b uses observables beyond NumObs=%d", got, m.NumObs)
	}
	// All-detectors-fired is the densest legal frame; it must also decode.
	all := make([]int, m.NumDetectors)
	for i := range all {
		all[i] = i
	}
	if got := dec.Decode(all); got>>uint(m.NumObs) != 0 {
		t.Fatalf("dense frame prediction %b out of observable range", got)
	}
}

// FuzzSyndromeDecode: any subset of detectors — encoded as a byte mask — must
// decode without panicking on either decoder family, and the predicted mask
// must stay inside the model's observable range. This is the decoder-facing
// half of the stream boundary contract: a replayed frame is exactly such a
// subset.
func FuzzSyndromeDecode(f *testing.F) {
	m, err := dem.FromCircuit(chainCode(2e-3, 1e-3))
	if err != nil {
		f.Fatal(err)
	}
	g, err := decoder.BuildGraph(m)
	if err != nil {
		f.Fatal(err)
	}
	decs := []decoder.Decoder{
		decoder.New(decoder.KindUnionFind, g),
		decoder.New(decoder.KindGreedy, g),
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF})
	f.Add([]byte{0x15})
	f.Add([]byte{0x2A, 0x01})
	f.Fuzz(func(t *testing.T, mask []byte) {
		var syn []int
		for d := 0; d < m.NumDetectors; d++ {
			if d/8 < len(mask) && mask[d/8]>>(d%8)&1 == 1 {
				syn = append(syn, d)
			}
		}
		for _, dec := range decs {
			got := dec.Decode(syn)
			if got>>uint(m.NumObs) != 0 {
				t.Fatalf("syndrome %v: prediction %b outside %d observables", syn, got, m.NumObs)
			}
		}
	})
}
