package dem

import (
	"caliqec/internal/circuit"
	"math"
	"testing"
)

// repCode builds a 3-qubit repetition code round with data X noise p and
// measurement flip q.
func repCode(rounds int, p, q float64) *circuit.Circuit {
	b := circuit.NewBuilder(5)
	b.Reset(0, 0, 1, 2)
	var prev []int
	for r := 0; r < rounds; r++ {
		b.XError(p, 0, 1, 2)
		b.Reset(0, 3, 4)
		b.CX(0, 3, 1, 3)
		b.CX(1, 4, 2, 4)
		recs := b.M(q, 3, 4)
		if r == 0 {
			b.Detector(recs[0])
			b.Detector(recs[1])
		} else {
			b.Detector(prev[0], recs[0])
			b.Detector(prev[1], recs[1])
		}
		prev = recs
	}
	dr := b.M(0, 0, 1, 2)
	b.Detector(prev[0], dr[0], dr[1])
	b.Detector(prev[1], dr[1], dr[2])
	b.Observable(0, dr[0])
	return b.Build()
}

func TestRepCodeDEMStructure(t *testing.T) {
	m, err := FromCircuit(repCode(2, 1e-3, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDetectors != 6 || m.NumObs != 1 {
		t.Fatalf("detectors=%d obs=%d", m.NumDetectors, m.NumObs)
	}
	// Every mechanism is graph-like and has sane probability.
	edgeCount, boundaryCount := 0, 0
	for _, mech := range m.Mechanisms {
		if len(mech.Detectors) > 2 {
			t.Fatalf("non-graph-like mechanism %v", mech)
		}
		if mech.P <= 0 || mech.P > 0.5 {
			t.Errorf("probability out of range: %v", mech)
		}
		if len(mech.Detectors) == 2 {
			edgeCount++
		} else {
			boundaryCount++
		}
	}
	if edgeCount == 0 || boundaryCount == 0 {
		t.Errorf("edges=%d boundary=%d; expected both kinds", edgeCount, boundaryCount)
	}
	// An X error on the edge qubit q0 in round 0 flips detector 0 and the
	// observable: find that boundary mechanism.
	found := false
	for _, mech := range m.Mechanisms {
		if len(mech.Detectors) == 1 && mech.Detectors[0] == 0 && mech.ObsMask == 1 {
			found = true
		}
	}
	if !found {
		t.Error("missing boundary mechanism with observable flip (X on q0)")
	}
}

func TestMergedProbabilities(t *testing.T) {
	// Two identical X error channels on the same qubit must merge:
	// p = p1(1-p2) + p2(1-p1).
	b := circuit.NewBuilder(2)
	b.Reset(0, 0)
	b.XError(0.1, 0)
	b.XError(0.2, 0)
	b.Reset(0, 1)
	b.CX(0, 1)
	recs := b.M(0, 1)
	b.Detector(recs[0])
	m, err := FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mechanisms) != 1 {
		t.Fatalf("want 1 merged mechanism, got %d", len(m.Mechanisms))
	}
	want := 0.1*0.8 + 0.2*0.9
	if math.Abs(m.Mechanisms[0].P-want) > 1e-12 {
		t.Errorf("merged p=%.6f, want %.6f", m.Mechanisms[0].P, want)
	}
}

func TestInvisibleErrorDropped(t *testing.T) {
	// A Z error on a qubit that is only ever Z-measured is invisible.
	b := circuit.NewBuilder(1)
	b.Reset(0, 0)
	b.ZError(0.3, 0)
	recs := b.M(0, 0)
	b.Detector(recs[0])
	m, err := FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mechanisms) != 0 {
		t.Errorf("invisible error produced mechanisms: %v", m.Mechanisms)
	}
}

func TestDepolarize1Decomposition(t *testing.T) {
	// DEPOLARIZE1 on a qubit measured in Z: X and Y components flip the
	// outcome (each p/3, merged), Z component invisible.
	b := circuit.NewBuilder(1)
	b.Reset(0, 0)
	b.Depolarize1(0.3, 0)
	recs := b.M(0, 0)
	b.Detector(recs[0])
	m, err := FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mechanisms) != 1 {
		t.Fatalf("want 1 mechanism, got %d: %v", len(m.Mechanisms), m.Mechanisms)
	}
	// X and Y components (0.1 each) merge: 0.1·0.9 + 0.1·0.9 = 0.18.
	if got := m.Mechanisms[0].P; math.Abs(got-0.18) > 1e-12 {
		t.Errorf("merged DEPOLARIZE1 visibility %.6f, want 0.18", got)
	}
}

func TestYErrorDecomposesWhenNonGraphlike(t *testing.T) {
	// Construct a circuit where a Y error flips 4 detectors (2 from its X
	// part, 2 from its Z part): the extractor must split it.
	b := circuit.NewBuilder(6) // data 0; Z-ancillas 1,2; X-ancillas 3,4; spare 5
	b.Reset(0, 0)
	b.ResetX(0, 5)
	var prevZ, prevX []int
	for r := 0; r < 2; r++ {
		if r == 1 {
			b.YError(0.1, 0)
		}
		// Z-parity checks touching qubit 0 twice (two ancillas).
		b.Reset(0, 1, 2)
		b.CX(0, 1, 0, 2)
		zr := b.M(0, 1, 2)
		// X-parity checks: ancilla in |+>, CX(anc→data), measure X.
		b.ResetX(0, 3)
		b.ResetX(0, 4)
		b.CX(3, 0, 4, 0)
		b.CX(3, 5, 4, 5) // anchor second support so X checks are 2-qubit
		xr := b.MX(0, 3, 4)
		if r == 0 {
			b.Detector(zr[0])
			b.Detector(zr[1])
		} else {
			b.Detector(prevZ[0], zr[0])
			b.Detector(prevZ[1], zr[1])
			b.Detector(prevX[0], xr[0])
			b.Detector(prevX[1], xr[1])
		}
		prevZ = zr
		prevX = xr
	}
	m, err := FromCircuit(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range m.Mechanisms {
		if len(mech.Detectors) > 2 {
			t.Fatalf("Y decomposition failed: %v", mech)
		}
	}
}
