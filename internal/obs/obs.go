// Package obs is the repository's stdlib-only observability layer: atomic
// metrics (counters, gauges, log₂-bucketed histograms) collected in a
// Registry, plus lightweight context-propagated spans exported as Chrome
// trace-event JSON (trace.go).
//
// The paper's claims are quantitative — LER(d,p) scaling, space-time cost
// Δd×T(Cal), retry risk under drift — and the engines that produce them
// (internal/mc, internal/runtime, internal/deform) run millions of shots
// behind a single return value. This package makes those runs observable:
// shot throughput, cache behaviour, per-chunk decode latency and
// calibration-session timelines all surface as named metrics and spans
// that cmd/caliqec and cmd/repro can dump to files or serve over HTTP.
//
// Contracts:
//
//   - Instrumentation never reads the wall clock directly in library code.
//     Every timestamp flows through an injected Clock (the `timenow` lint
//     rule enforces this repo-wide); the package's single sanctioned
//     time.Now reference below is the default a nil Clock falls back to,
//     mirroring internal/exp's wallClock.
//   - Metric updates are lock-free atomics, cheap enough for the mc
//     engine's chunk loop; handle lookup (Registry.Counter etc.) takes a
//     mutex and is meant to happen once per evaluation, not per shot.
//   - Metric names are dotted paths ("mc.decode.latency"), the same flat
//     naming expvar uses, and Snapshot/WriteJSON export a flat
//     {name: value} JSON object so the output drops into any expvar-style
//     consumer.
//   - Instrumentation must never change results: metrics are write-only
//     from the instrumented code's point of view, and the Discard registry
//     turns every update into a no-op for overhead measurements
//     (BenchmarkObsOverhead keeps the delta below 5%).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is an injected time source. A nil Clock means the process wall
// clock; tests inject fakes for deterministic latency histograms and trace
// timestamps.
type Clock func() time.Time

// wallClock is the package's single sanctioned wall-clock source, the
// fallback behind a nil Clock. Library code never calls time.Now
// elsewhere; tests swap deterministic fakes in via NewRegistry/NewTracer.
var wallClock Clock = time.Now //lint:allow timenow single injected wall-clock fallback for the observability layer

// Registry is a named collection of counters, gauges and histograms.
// Handles returned by Counter/Gauge/Histogram are stable for the life of
// the registry and safe for concurrent use; lookups of the same name
// return the same handle.
//
// The zero value is not usable; construct with NewRegistry. The package
// Default registry is shared process-wide, and Discard swallows every
// update (its handle getters return nil, and all metric methods are
// nil-receiver no-ops).
type Registry struct {
	clock   Clock
	discard bool

	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	histogram map[string]*Histogram
}

// NewRegistry returns an empty registry reading time from clock (nil means
// the process wall clock).
func NewRegistry(clock Clock) *Registry {
	return &Registry{
		clock:     clock,
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		histogram: map[string]*Histogram{},
	}
}

// Default is the process-wide registry: library instrumentation (mc,
// runtime, deform) records here unless explicitly given another registry,
// so one --metrics dump sees the whole run.
var Default = NewRegistry(nil)

// Discard is a registry whose handles are nil and whose updates are
// no-ops: instrumented code runs uninstrumented. Used as the baseline of
// overhead measurements.
var Discard = &Registry{discard: true}

// Now reads the registry's clock. A nil or discarding registry returns the
// zero time (callers pairing Now with a nil Histogram skip timing
// entirely).
func (r *Registry) Now() time.Time {
	if r == nil || r.discard {
		return time.Time{}
	}
	if r.clock == nil {
		return wallClock()
	}
	return r.clock()
}

// Counter returns the named monotonic counter, creating it on first use.
// Returns nil (a valid no-op handle) on a nil or Discard registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil || r.discard {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named float gauge, creating it on first use. Returns
// nil (a valid no-op handle) on a nil or Discard registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil || r.discard {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named log₂-bucketed histogram, creating it on
// first use. Returns nil (a valid no-op handle) on a nil or Discard
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil || r.discard {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histogram[name]
	if !ok {
		h = &Histogram{}
		r.histogram[name] = h
	}
	return h
}

// Counter is a monotonic int64 counter. All methods are safe on a nil
// receiver (no-ops), so code instrumented against a Discard registry pays
// only a nil check.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 last-value gauge (atomically stored bits). Methods
// are nil-receiver no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the current value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log₂ buckets: bucket b holds values v with
// bits.Len64(v) == b, i.e. v ∈ [2^(b-1), 2^b−1], with bucket 0 collecting
// v ≤ 0. Positive int64 samples occupy buckets 1..63 (bits.Len64 of
// MaxInt64 is 63), so 0..63 covers the full range.
const histBuckets = 64

// Histogram is a log₂-bucketed histogram of int64 samples (typically
// latencies in nanoseconds): bucket b counts samples in [2^(b-1), 2^b−1],
// bucket 0 counts non-positive samples. Observe is a few atomic adds, so
// it is safe in hot loops; methods are nil-receiver no-ops.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket b (0 for bucket
// 0, 2^b−1 otherwise; the top bucket's bound saturates at MaxInt64).
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count in bucket b (0 on nil or out of range).
func (h *Histogram) Bucket(b int) int64 {
	if h == nil || b < 0 || b >= histBuckets {
		return 0
	}
	return h.buckets[b].Load()
}

// HistogramSnapshot is the exported form of a histogram: total count, sum,
// and the non-empty buckets keyed by inclusive upper bound.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one non-empty log₂ bucket.
type HistogramBucket struct {
	Le    int64 `json:"le"` // inclusive upper bound (2^b − 1)
	Count int64 `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Buckets: []HistogramBucket{}}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: BucketUpper(b), Count: n})
		}
	}
	return s
}

// Snapshot returns the registry's current contents as a flat
// name → value map (counters as int64, gauges as float64, histograms as
// HistogramSnapshot), the expvar-style shape WriteJSON serializes.
// Individual reads are atomic; the map is a consistent-enough view for
// export (concurrent writers may land between reads, as with expvar).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil || r.discard {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histogram {
		out[name] = h.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as a flat JSON object with keys in sorted
// order (deterministic output for goldens and diffs).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		val, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s  %s: %s", sep, key, val); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// Handler serves the registry snapshot as JSON (the --debug-addr /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
