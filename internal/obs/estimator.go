// Deterministic drift estimators: fixed-point EWMA + one-sided Page/CUSUM
// change detection, and Wilson confidence intervals for windowed rates.
//
// The stream pipeline (internal/stream) feeds these per finalized frame
// window, and the resulting drift events gate live calibration decisions —
// so their arithmetic must be reproducible: the same trace must yield the
// same events regardless of decode worker count, queue depth, or host
// floating-point quirks in accumulation order. Rates are therefore carried
// as integer fixed-point values (FPOne = one unit of rate) and every state
// update is integer addition and shifting; floats appear only at the edges
// (converting configuration in, formatting snapshots out), where each value
// is computed from integers by the same expression on every run.
package obs

import "math"

// FPShift and FPOne define the fixed-point rate representation: a rate r in
// [0, 1] is carried as the integer round(r * FPOne), giving ~1e-6 resolution
// — far below the shot noise of any realistic estimator window.
const (
	FPShift = 20
	FPOne   = int64(1) << FPShift
)

// ToFixed converts a float rate to fixed point (rounding to nearest).
func ToFixed(v float64) int64 { return int64(math.Round(v * float64(FPOne))) }

// FromFixed converts a fixed-point rate back to a float.
func FromFixed(v int64) float64 { return float64(v) / float64(FPOne) }

// RateConfig parameterizes a RateEstimator. The zero value is not useful;
// fill it once (e.g. stream.EstimatorConfig does) and share it across many
// estimators — Update takes the config by value so a detector array needs
// only one config and N bare RateEstimator values.
type RateConfig struct {
	// EWMAShift sets the smoothing factor alpha = 2^-EWMAShift of the
	// exponentially weighted moving average.
	EWMAShift uint
	// Warmup is the number of windows used to learn the baseline rate. The
	// CUSUM statistic stays disarmed until the warmup completes; the EWMA at
	// that point is frozen as the baseline.
	Warmup int
	// Slack is the Page/CUSUM allowance k (fixed point): per-window excess
	// below baseline+Slack does not accumulate. It absorbs shot noise;
	// choose it a few standard deviations of the windowed rate.
	Slack int64
	// Threshold is the CUSUM decision threshold h (fixed point): the
	// estimator trips when the accumulated excess reaches it. After a trip
	// the statistic restarts from zero (classic Page restart), so a
	// persistent shift re-trips every ~Threshold/drift windows.
	Threshold int64
}

// RateEstimator tracks one windowed rate series: an integer EWMA plus a
// one-sided (upward) Page/CUSUM statistic against a warmup-frozen baseline.
// The zero value is ready for use. Not safe for concurrent use; callers
// serialize updates (the stream monitor finalizes windows in order under
// one lock, which is also what makes the event sequence deterministic).
type RateEstimator struct {
	n        int64 // windows observed
	ewma     int64 // fixed-point smoothed rate
	baseline int64 // frozen EWMA after warmup
	cusum    int64 // accumulated positive excess
	trips    int64 // times the threshold was reached
	lastTrip int64 // 1-based window of the last trip (0 = never)
}

// Update feeds one windowed rate observation (fixed point) and reports
// whether the CUSUM statistic crossed the threshold on this window.
func (e *RateEstimator) Update(cfg RateConfig, rate int64) bool {
	e.n++
	if e.n == 1 {
		e.ewma = rate
	} else {
		e.ewma += (rate - e.ewma) >> cfg.EWMAShift
	}
	if e.n <= int64(cfg.Warmup) {
		e.baseline = e.ewma
		return false
	}
	e.cusum += rate - e.baseline - cfg.Slack
	if e.cusum < 0 {
		e.cusum = 0
	}
	if e.cusum >= cfg.Threshold {
		e.trips++
		e.lastTrip = e.n
		e.cusum = 0
		return true
	}
	return false
}

// Windows returns how many windows have been observed.
func (e *RateEstimator) Windows() int64 { return e.n }

// EWMA returns the current smoothed rate (fixed point).
func (e *RateEstimator) EWMA() int64 { return e.ewma }

// Baseline returns the warmup-frozen baseline rate (fixed point); while
// warming up it tracks the EWMA.
func (e *RateEstimator) Baseline() int64 { return e.baseline }

// Score returns the current CUSUM statistic (fixed point).
func (e *RateEstimator) Score() int64 { return e.cusum }

// Trips returns how many times the estimator has tripped.
func (e *RateEstimator) Trips() int64 { return e.trips }

// LastTrip returns the 1-based window index of the most recent trip, 0 if
// the estimator never tripped.
func (e *RateEstimator) LastTrip() int64 { return e.lastTrip }

// Wilson returns the Wilson score interval for a binomial proportion:
// successes out of n at confidence z (z = 1.96 for 95%, 3 for ~99.7%).
// Degenerate inputs (n <= 0) return (0, 1). The computation is a fixed
// closed-form expression over two integers, so identical inputs produce
// bit-identical bounds on every run — the property windowed-LER snapshots
// rely on.
func Wilson(successes, n int64, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Snapshot returns the histogram's current contents (empty on nil), the
// same form Registry.Snapshot exports.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{Buckets: []HistogramBucket{}}
	}
	return h.snapshot()
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed samples,
// linearly interpolated inside the covering log₂ bucket. With only bucket
// counts the true order statistic is unrecoverable; interpolation bounds the
// error by the bucket width (a factor of 2), which is what latency gating
// needs — budgets are set with far more headroom than that. Returns 0 when
// no samples were observed.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic to report: the
	// ceil(q*Count)-th smallest sample, at least the 1st.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		lower := bucketLower(b.Le)
		if b.Le <= lower {
			return float64(b.Le)
		}
		// Spread the bucket's samples evenly across [lower, Le] and read
		// off the rank's position; the -0.5 centers samples in their slots.
		frac := (float64(rank-cum) - 0.5) / float64(b.Count)
		if frac < 0 {
			frac = 0
		}
		return float64(lower) + frac*float64(b.Le-lower)
	}
	// Unreachable when Count equals the bucket sum; be defensive about
	// torn concurrent snapshots and report the largest known bound.
	if n := len(s.Buckets); n > 0 {
		return float64(s.Buckets[n-1].Le)
	}
	return 0
}

// Quantile is shorthand for h.Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// bucketLower returns the inclusive lower bound of the log₂ bucket whose
// inclusive upper bound is le.
func bucketLower(le int64) int64 {
	if le <= 1 {
		return le
	}
	return le/2 + 1
}
