package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock ticks one millisecond per read, starting at a fixed epoch, so
// span timestamps and durations are fully deterministic.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{
		now:  time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		step: time.Millisecond,
	}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a tracer must return ctx unchanged")
	}
	// All span methods must be nil-safe.
	sp.SetAttr("k", 1)
	sp.Event("e")
	sp.End()
	if sp.ID() != 0 || sp.Parent() != 0 {
		t.Fatal("nil span IDs must read as zero")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(newFakeClock().Now)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "root")
	ctx2, child := StartSpan(ctx1, "child")
	_, grand := StartSpan(ctx2, "grandchild")

	if root.Parent() != 0 {
		t.Errorf("root parent = %d, want 0", root.Parent())
	}
	if child.Parent() != root.ID() {
		t.Errorf("child parent = %d, want root id %d", child.Parent(), root.ID())
	}
	if grand.Parent() != child.ID() {
		t.Errorf("grandchild parent = %d, want child id %d", grand.Parent(), child.ID())
	}
	if SpanFrom(ctx2) != child {
		t.Error("SpanFrom must return the span StartSpan stored")
	}
	if TracerFrom(ctx1) != tr {
		t.Error("TracerFrom must survive span derivation")
	}

	// Siblings of child must also parent to root, not to child.
	_, sib := StartSpan(ctx1, "sibling")
	if sib.Parent() != root.ID() {
		t.Errorf("sibling parent = %d, want root id %d", sib.Parent(), root.ID())
	}

	grand.End()
	child.End()
	sib.End()
	root.End()
	if tr.Len() != 4 {
		t.Errorf("recorded %d events, want 4", tr.Len())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(newFakeClock().Now)
	_, sp := StartSpan(WithTracer(context.Background(), tr), "once")
	sp.End()
	sp.End()
	sp.End()
	if tr.Len() != 1 {
		t.Errorf("End must record exactly once, got %d events", tr.Len())
	}
}

// TestChromeTraceGolden pins the exact exporter output with a fake clock:
// the file must stay loadable by chrome://tracing / Perfetto, so the
// schema (traceEvents array, ph X/i, µs timestamps, tid lanes, args) is a
// compatibility surface.
func TestChromeTraceGolden(t *testing.T) {
	clock := newFakeClock()
	tr := NewTracer(clock.Now)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "interval") // start t=0ms
	root.SetAttr("tag", "int0")
	_, sess := StartSpan(ctx1, "deform.session") // start t=1ms
	sess.SetAttr("dd", 2)
	sess.Event("isolate") // t=2ms
	sess.End()            // end t=3ms
	root.End()            // end t=4ms

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	const golden = `{
  "traceEvents": [
    {
      "name": "interval",
      "cat": "span",
      "ph": "X",
      "ts": 0,
      "dur": 4000,
      "pid": 1,
      "tid": 1,
      "args": {
        "span": 1,
        "tag": "int0"
      }
    },
    {
      "name": "deform.session",
      "cat": "span",
      "ph": "X",
      "ts": 1000,
      "dur": 2000,
      "pid": 1,
      "tid": 1,
      "args": {
        "dd": 2,
        "parent": 1,
        "span": 2
      }
    },
    {
      "name": "isolate",
      "cat": "event",
      "ph": "i",
      "ts": 2000,
      "pid": 1,
      "tid": 1,
      "s": "t",
      "args": {
        "span": 2
      }
    }
  ],
  "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != golden {
		t.Errorf("trace JSON mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// And it must round-trip as JSON with the fields a viewer needs.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %v missing required field %q", ev["name"], field)
			}
		}
	}
}

func TestSetAttrAfterEndDropped(t *testing.T) {
	tr := NewTracer(newFakeClock().Now)
	_, sp := StartSpan(WithTracer(context.Background(), tr), "s")
	sp.End()
	sp.SetAttr("late", true)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("late")) {
		t.Error("attributes set after End must not appear in the export")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := StartSpan(ctx, "worker")
			sp.SetAttr("i", i)
			_, inner := StartSpan(sctx, "inner")
			inner.End()
			sp.End()
		}(i)
	}
	wg.Wait()
	if tr.Len() != 2*n {
		t.Errorf("recorded %d events, want %d", tr.Len(), 2*n)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
