package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects spans and exports them as Chrome trace-event JSON, the
// format chrome://tracing and Perfetto load directly. A Tracer is attached
// to a context with WithTracer; StartSpan is a no-op (returning a nil,
// safe-to-use Span) when the context carries none, so instrumented library
// code costs two context lookups per span when tracing is off.
//
// Span identity: every span gets a process-unique ID from the tracer and
// remembers the ID of the span active in the context it was started from.
// Synchronous nesting (a calibration interval containing deformation
// sessions containing mc evaluations) renders as a stack in the viewer
// because children share the root span's lane (tid) and their time ranges
// nest inside the parent's.
type Tracer struct {
	clock Clock

	mu     sync.Mutex
	nextID uint64
	epoch  time.Time // ts origin; set on first event so fakes stay simple
	based  bool
	events []traceEvent
}

// NewTracer returns an empty tracer reading time from clock (nil means the
// process wall clock).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// now reads the tracer's clock and pins the epoch to the first timestamp
// ever read (a root span's start), so exported ts values are non-negative
// offsets from the run's beginning.
func (t *Tracer) now() time.Time {
	var at time.Time
	if t.clock == nil {
		at = wallClock()
	} else {
		at = t.clock()
	}
	t.mu.Lock()
	if !t.based {
		t.epoch = at
		t.based = true
	}
	t.mu.Unlock()
	return at
}

// micros converts an absolute time to microseconds since the tracer's
// epoch.
func (t *Tracer) micros(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / float64(time.Microsecond)
}

func (t *Tracer) newID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// traceEvent is one Chrome trace-event object. Phase "X" is a complete
// (begin+duration) event, "i" an instant event.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSON exports every recorded event as a Chrome trace-event file
// ({"traceEvents": [...]}). Events are sorted by (ts, tid, name) so the
// output is deterministic for a fixed clock regardless of which goroutines
// ended which spans in what order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Ts != b.Ts { //lint:allow floateq sort key comparison on exact recorded timestamps, not arithmetic results
			return a.Ts < b.Ts
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// Len reports how many events have been recorded.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context whose StartSpan calls record into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// Span is one timed operation. Obtain with StartSpan; a nil *Span (no
// tracer in the context) is valid and all methods are no-ops, so callers
// never branch on tracing being enabled. Every span returned by StartSpan
// must be ended on every path — `defer span.End()` or an explicit End
// before each return; the `obsspan` lint rule enforces this.
type Span struct {
	tr     *Tracer
	name   string
	id     uint64
	parent uint64 // 0 for a root span
	tid    uint64 // lane: the root span's ID
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan begins a span named name as a child of the span active in ctx
// (if any) and returns a derived context carrying the new span. Without a
// tracer in ctx it returns ctx unchanged and a nil Span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{tr: tr, name: name, id: tr.newID(), start: tr.now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.parent = parent.id
		sp.tid = parent.tid
	} else {
		sp.tid = sp.id
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the span active in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ID returns the span's process-unique ID (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Parent returns the parent span's ID (0 on nil or root).
func (s *Span) Parent() uint64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// SetAttr attaches a key/value attribute, exported in the trace event's
// args. Safe for concurrent use; last write per key wins.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// Event records an instant event (a zero-duration marker such as
// "early-stop") on the span's lane at the current clock time.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	at := s.tr.now()
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.tr.events = append(s.tr.events, traceEvent{
		Name: name, Cat: "event", Phase: "i", Scope: "t",
		Ts: s.tr.micros(at), PID: 1, TID: s.tid,
		Args: map[string]any{"span": s.id},
	})
}

// End completes the span, recording a complete ("X") trace event with the
// span's duration and attributes. End is idempotent; only the first call
// records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := map[string]any{"span": s.id}
	if s.parent != 0 {
		args["parent"] = s.parent
	}
	for k, v := range s.attrs {
		args[k] = v
	}
	s.mu.Unlock()

	end := s.tr.now()
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	ts := s.tr.micros(s.start)
	s.tr.events = append(s.tr.events, traceEvent{
		Name: s.name, Cat: "span", Phase: "X",
		Ts: ts, Dur: float64(end.Sub(s.start)) / float64(time.Microsecond),
		PID: 1, TID: s.tid, Args: args,
	})
}
