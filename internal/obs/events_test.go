package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEventSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 16)
	type ev struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	for i := 0; i < 5; i++ {
		if !s.Emit(ev{Kind: "test", N: i}) {
			t.Fatalf("emit %d rejected", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Emitted() != 5 || s.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d", s.Emitted(), s.Dropped())
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e ev
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.N != n {
			t.Fatalf("line %d carries n=%d: events reordered", n, e.N)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("%d lines, want 5", n)
	}
}

// blockingWriter blocks every Write until released, simulating a stalled
// consumer.
type blockingWriter struct {
	release chan struct{}
	wrote   chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.wrote <- struct{}{}
	<-w.release
	return len(p), nil
}

func TestEventSinkDropsWhenFull(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{}), wrote: make(chan struct{}, 64)}
	s := NewEventSink(w, 2)
	// First emit is picked up by the writer and blocks there; wait for it so
	// the queue state below is deterministic.
	if !s.Emit("a") {
		t.Fatal("first emit rejected")
	}
	<-w.wrote
	// Two more fill the queue; the next must drop.
	if !s.Emit("b") || !s.Emit("c") {
		t.Fatal("queue-filling emits rejected")
	}
	if s.Emit("d") {
		t.Fatal("emit accepted on a full queue")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", s.Dropped())
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Emitted() != 3 {
		t.Fatalf("emitted=%d, want 3", s.Emitted())
	}
}

func TestEventSinkEmitAfterCloseDrops(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Emit("late") {
		t.Fatal("emit accepted after close")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", s.Dropped())
	}
	// Double close is safe.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventSinkUnmarshalableDrops(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 4)
	defer s.Close()
	if s.Emit(func() {}) {
		t.Fatal("unmarshalable value accepted")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", s.Dropped())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, fmt.Errorf("disk full")
}

func TestEventSinkWriteErrorSurfacesOnClose(t *testing.T) {
	s := NewEventSink(&failWriter{}, 4)
	s.Emit("x")
	s.Emit("y")
	err := s.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close() = %v, want the write error", err)
	}
	if s.Emitted() != 0 {
		t.Fatalf("emitted=%d after total write failure, want 0", s.Emitted())
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", s.Dropped())
	}
}

func TestEventSinkConcurrentEmitClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit(i) // must never panic, even racing Close
			}
		}()
	}
	s.Close()
	wg.Wait()
	if got := s.Emitted() + s.Dropped(); got != 400 {
		t.Fatalf("emitted+dropped = %d, want 400", got)
	}
}

func TestEventSinkNilSafe(t *testing.T) {
	var s *EventSink
	if s.Emit("x") {
		t.Error("nil sink accepted an emit")
	}
	if s.Dropped() != 0 || s.Emitted() != 0 {
		t.Error("nil sink counters non-zero")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
