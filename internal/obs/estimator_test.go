package obs

import (
	"math"
	"testing"
)

func TestFixedPointRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1e-6, 0.01, 0.5, 1} {
		got := FromFixed(ToFixed(v))
		if math.Abs(got-v) > 1.0/float64(FPOne) {
			t.Errorf("ToFixed/FromFixed(%g) = %g", v, got)
		}
	}
}

func TestRateEstimatorStableSeriesNeverTrips(t *testing.T) {
	cfg := RateConfig{EWMAShift: 3, Warmup: 4, Slack: ToFixed(0.01), Threshold: ToFixed(0.05)}
	var e RateEstimator
	// Steady rate with sub-slack jitter: CUSUM must stay disarmed.
	rates := []float64{0.020, 0.022, 0.019, 0.021, 0.020, 0.023, 0.018, 0.021, 0.020, 0.022}
	for i, r := range rates {
		if e.Update(cfg, ToFixed(r)) {
			t.Fatalf("window %d: steady series tripped (score %g)", i, FromFixed(e.Score()))
		}
	}
	if e.Trips() != 0 || e.LastTrip() != 0 {
		t.Fatalf("trips=%d lastTrip=%d on a steady series", e.Trips(), e.LastTrip())
	}
	base := FromFixed(e.Baseline())
	if base < 0.015 || base > 0.025 {
		t.Errorf("baseline %g not near the series mean", base)
	}
}

func TestRateEstimatorDetectsStep(t *testing.T) {
	cfg := RateConfig{EWMAShift: 3, Warmup: 4, Slack: ToFixed(0.01), Threshold: ToFixed(0.05)}
	var e RateEstimator
	for i := 0; i < 6; i++ {
		if e.Update(cfg, ToFixed(0.02)) {
			t.Fatalf("pre-step window %d tripped", i)
		}
	}
	// 3x step: excess per window = 0.06-0.02-0.01 = 0.03, so the threshold
	// of 0.05 is reached on the second post-step window.
	tripped := -1
	for i := 0; i < 5; i++ {
		if e.Update(cfg, ToFixed(0.06)) {
			tripped = i
			break
		}
	}
	if tripped != 1 {
		t.Fatalf("step tripped at post-step window %d, want 1", tripped)
	}
	if e.Score() != 0 {
		t.Errorf("CUSUM not restarted after trip: %d", e.Score())
	}
	// The shift persists: Page restart re-trips.
	again := false
	for i := 0; i < 3 && !again; i++ {
		again = e.Update(cfg, ToFixed(0.06))
	}
	if !again {
		t.Error("persistent shift did not re-trip after restart")
	}
	if e.Trips() != 2 {
		t.Errorf("trips = %d, want 2", e.Trips())
	}
}

func TestRateEstimatorDeterminism(t *testing.T) {
	cfg := RateConfig{EWMAShift: 2, Warmup: 3, Slack: ToFixed(0.005), Threshold: ToFixed(0.02)}
	series := []int64{ToFixed(0.01), ToFixed(0.012), ToFixed(0.011), ToFixed(0.05), ToFixed(0.049), ToFixed(0.05)}
	run := func() (RateEstimator, []bool) {
		var e RateEstimator
		var trips []bool
		for _, r := range series {
			trips = append(trips, e.Update(cfg, r))
		}
		return e, trips
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 {
		t.Fatalf("estimator state diverged: %+v vs %+v", e1, e2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trip sequence diverged at %d", i)
		}
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("degenerate n=0: [%g, %g]", lo, hi)
	}
	lo, hi = Wilson(0, 100, 1.96)
	if lo != 0 {
		t.Errorf("0/100 lower bound %g, want 0", lo)
	}
	if hi < 0.01 || hi > 0.1 {
		t.Errorf("0/100 upper bound %g outside a plausible range", hi)
	}
	lo, hi = Wilson(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("50/100 interval [%g, %g] does not bracket 0.5", lo, hi)
	}
	// ~95% interval at p=0.5, n=100 is roughly ±0.1.
	if lo < 0.35 || lo > 0.45 || hi < 0.55 || hi > 0.65 {
		t.Errorf("50/100 interval [%g, %g] has the wrong width", lo, hi)
	}
	// Monotone in n: more samples tighten the interval.
	lo2, hi2 := Wilson(500, 1000, 1.96)
	if hi2-lo2 >= hi-lo {
		t.Errorf("interval did not tighten with n: %g vs %g", hi2-lo2, hi-lo)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	// 1000 samples of value 100: every quantile must land inside 100's
	// bucket [64, 127].
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("quantile(%g) = %g outside bucket [64, 127]", q, got)
		}
	}

	// Bimodal: 99 small samples and 1 large one. p50 must sit in the small
	// bucket, p100 in the large one.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.Observe(10) // bucket [8, 15]
	}
	h2.Observe(1000) // bucket [512, 1023]
	if got := h2.Quantile(0.5); got < 8 || got > 15 {
		t.Errorf("bimodal p50 = %g, want within [8, 15]", got)
	}
	if got := h2.Quantile(1); got < 512 || got > 1023 {
		t.Errorf("bimodal p100 = %g, want within [512, 1023]", got)
	}
	// p99 ranks the 99th of 100 samples: still the small bucket.
	if got := h2.Quantile(0.99); got < 8 || got > 15 {
		t.Errorf("bimodal p99 = %g, want within [8, 15]", got)
	}

	// Interpolation is monotone in q within one bucket.
	var h3 Histogram
	for i := 0; i < 100; i++ {
		h3.Observe(100)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got := h3.Quantile(q)
		if got < prev {
			t.Errorf("quantile not monotone: q=%g gave %g after %g", q, got, prev)
		}
		prev = got
	}

	// Nil-receiver safety, mirroring the other metric handles.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g", got)
	}
	if snap := nilH.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Errorf("nil histogram snapshot = %+v", snap)
	}

	// Non-positive samples land in bucket 0 and report 0.
	var h4 Histogram
	h4.Observe(-5)
	h4.Observe(0)
	if got := h4.Quantile(0.5); got != 0 {
		t.Errorf("non-positive quantile = %g, want 0", got)
	}
}
