package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every positive bucket's range is [BucketUpper(b-1)+1, BucketUpper(b)]:
	// both endpoints must map back to b.
	for b := 1; b < 64; b++ {
		lo, hi := BucketUpper(b-1)+1, BucketUpper(b)
		if bucketOf(lo) != b || bucketOf(hi) != b {
			t.Errorf("bucket %d: endpoints %d..%d map to %d and %d",
				b, lo, hi, bucketOf(lo), bucketOf(hi))
		}
	}
	if BucketUpper(63) != math.MaxInt64 {
		t.Errorf("BucketUpper(63) = %d, want MaxInt64", BucketUpper(63))
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
}

func TestHistogramObserve(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 1000, -7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 999 {
		t.Errorf("Sum = %d, want 999", h.Sum())
	}
	if h.Bucket(0) != 1 { // -7
		t.Errorf("bucket 0 = %d, want 1", h.Bucket(0))
	}
	if h.Bucket(2) != 2 { // 2, 3
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
	if h.Bucket(10) != 1 { // 1000 ∈ [512, 1023]
		t.Errorf("bucket 10 = %d, want 1", h.Bucket(10))
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Bucket(1) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestDiscardRegistry(t *testing.T) {
	if Discard.Counter("x") != nil || Discard.Gauge("x") != nil || Discard.Histogram("x") != nil {
		t.Fatal("Discard must hand out nil handles")
	}
	if !Discard.Now().IsZero() {
		t.Fatal("Discard.Now must be the zero time")
	}
	if len(Discard.Snapshot()) != 0 {
		t.Fatal("Discard snapshot must be empty")
	}
	var nilReg *Registry
	if nilReg.Counter("x") != nil || !nilReg.Now().IsZero() || len(nilReg.Snapshot()) != 0 {
		t.Fatal("nil registry must behave like Discard")
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry(nil)
	if r.Counter("a") != r.Counter("a") {
		t.Error("same-name counters must be the same handle")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("same-name gauges must be the same handle")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Error("same-name histograms must be the same handle")
	}
}

// TestSnapshotUnderConcurrentWriters hammers one registry from many
// goroutines while snapshotting; run with -race. The final snapshot must
// account for every write.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry(nil)
	const workers, perWorker = 8, 1000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader racing the writers
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("hits")
			h := r.Histogram("lat")
			g := r.Gauge("level")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i + 1))
				g.Set(float64(i))
			}
		}()
	}
	writers.Wait()
	close(stop)
	<-readerDone

	snap := r.Snapshot()
	if got := snap["hits"].(int64); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
	hs := snap["lat"].(HistogramSnapshot)
	if hs.Count != workers*perWorker {
		t.Errorf("lat count = %d, want %d", hs.Count, workers*perWorker)
	}
	wantSum := int64(workers) * perWorker * (perWorker + 1) / 2
	if hs.Sum != wantSum {
		t.Errorf("lat sum = %d, want %d", hs.Sum, wantSum)
	}
	if g := snap["level"].(float64); g != perWorker-1 { //lint:allow floateq exact value stored by the last writer
		t.Errorf("level = %v, want %v", g, perWorker-1)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("mc.shots").Add(4096)
	r.Counter("mc.cache.hits").Add(7)
	r.Gauge("runtime.retry_risk.caliqec").Set(0.125)
	h := r.Histogram("mc.decode.latency")
	h.Observe(3)
	h.Observe(900)

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteJSON not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}

	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	for _, key := range []string{"mc.shots", "mc.cache.hits", "runtime.retry_risk.caliqec", "mc.decode.latency"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("missing key %q in snapshot JSON", key)
		}
	}
	// Keys must appear in sorted order in the raw bytes.
	idxHits := strings.Index(a.String(), "mc.cache.hits")
	idxShots := strings.Index(a.String(), "mc.shots")
	if idxHits < 0 || idxShots < 0 || idxHits > idxShots {
		t.Errorf("keys not sorted in output:\n%s", a.String())
	}

	var hs HistogramSnapshot
	if err := json.Unmarshal(decoded["mc.decode.latency"], &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Count != 2 || hs.Sum != 903 || len(hs.Buckets) != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if hs.Buckets[0].Le != 3 || hs.Buckets[1].Le != 1023 {
		t.Errorf("bucket bounds = %d, %d; want 3, 1023", hs.Buckets[0].Le, hs.Buckets[1].Le)
	}
}

func TestRegistryClock(t *testing.T) {
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r := NewRegistry(func() time.Time { return at })
	if !r.Now().Equal(at) {
		t.Errorf("Now() = %v, want %v", r.Now(), at)
	}
}
