package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// EventSink is a bounded, drop-counting structured-event log: Emit marshals
// an event to one JSON line and hands it to a background writer through a
// fixed-capacity queue. Emit never blocks — when the writer cannot keep up
// the event is dropped and counted instead, so an estimator hot path can
// log through a slow disk or pipe without ever stalling frame decoding.
// Dropping is the explicit, observable failure mode: Dropped() is exported
// in health snapshots so a consumer knows its event series has gaps.
//
// All methods are safe for concurrent use and are no-ops on a nil receiver
// (the disabled-sink idiom the rest of this package uses for nil handles).
type EventSink struct {
	mu     sync.RWMutex // guards jobs against Emit/Close races
	w      io.Writer
	jobs   chan sinkJob
	done   chan struct{}
	werr   error // first write error; confined to run until done closes
	closed bool

	emitted atomic.Int64
	dropped atomic.Int64
}

// sinkJob is one queue entry: an encoded event line, or (when ack is
// non-nil) a Flush barrier the writer goroutine answers with the current
// write-error state.
type sinkJob struct {
	b   []byte
	ack chan error
}

// NewEventSink returns a sink writing JSON lines to w. capacity bounds the
// pending-event queue (<= 0 selects 256). The caller must Close the sink to
// flush and observe write errors.
func NewEventSink(w io.Writer, capacity int) *EventSink {
	if capacity <= 0 {
		capacity = 256
	}
	s := &EventSink{
		w:    w,
		jobs: make(chan sinkJob, capacity),
		done: make(chan struct{}),
	}
	go s.run() //lint:allow bareloop the sink owns its writer goroutine; Close() drains the queue and joins it
	return s
}

// run drains the queue onto the writer. After the first write error the
// remaining events are consumed and dropped (counted), keeping Emit cheap
// instead of backing the queue up behind a dead writer.
func (s *EventSink) run() {
	defer close(s.done)
	for j := range s.jobs {
		if j.ack != nil {
			// Flush barrier: everything enqueued before it has been handed
			// to the writer; report the error state as of this point.
			j.ack <- s.werr
			continue
		}
		if s.werr != nil {
			s.dropped.Add(1)
			s.emitted.Add(-1)
			continue
		}
		if _, err := s.w.Write(j.b); err != nil {
			s.werr = err
			s.dropped.Add(1)
			s.emitted.Add(-1)
		}
	}
}

// Emit serializes v as one JSON line and enqueues it. It reports false —
// and counts a drop — when the sink is nil, closed, the value does not
// marshal, or the queue is full.
func (s *EventSink) Emit(v any) bool {
	if s == nil {
		return false
	}
	b, err := json.Marshal(v)
	if err != nil {
		s.dropped.Add(1)
		return false
	}
	b = append(b, '\n')
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return false
	}
	select {
	case s.jobs <- sinkJob{b: b}:
		s.emitted.Add(1)
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Flush blocks until every event enqueued before the call has been handed
// to the writer, and returns the first write error seen so far. Unlike
// Close it leaves the sink open — use it at drain points (server shutdown,
// end of a stream batch) where the sink is shared and must keep accepting
// events. On a closed sink it waits for the writer to finish and returns
// its error; no-op on nil.
func (s *EventSink) Flush() error {
	if s == nil {
		return nil
	}
	ack := make(chan error, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		<-s.done
		return s.werr
	}
	// A blocking send, deliberately: Flush is a rare control operation and
	// must wait for queue space behind the events it is flushing.
	s.jobs <- sinkJob{ack: ack}
	s.mu.RUnlock()
	return <-ack
}

// Emitted returns how many events were accepted and written (or are still
// queued). 0 on nil.
func (s *EventSink) Emitted() int64 {
	if s == nil {
		return 0
	}
	return s.emitted.Load()
}

// Dropped returns how many events were lost: queue overflow, marshal
// failure, post-close emits, or write errors. 0 on nil.
func (s *EventSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close drains the queue, stops the writer and returns the first write
// error. Safe to call more than once; later Emits count as drops. No-op on
// nil.
func (s *EventSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.jobs)
	}
	s.mu.Unlock()
	<-s.done
	return s.werr
}
