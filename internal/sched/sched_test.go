package sched

import (
	"caliqec/internal/noise"
	"math"
	"testing"
	"testing/quick"
)

// profilesWithDeadlines builds gates whose drift deadlines at pTar=1 are
// exactly the given hours (Drift.TimeToReach(10·p0·...)=...): we use
// P0=1e-3 and pTar=1e-2 so deadline = TDrift exactly (one decade).
func profilesWithDeadlines(hours ...float64) ([]GateProfile, float64) {
	var gs []GateProfile
	for i, h := range hours {
		gs = append(gs, GateProfile{
			GateID: i,
			Drift:  noise.Drift{P0: 1e-3, TDrift: h},
		})
	}
	return gs, 1e-2
}

// TestFig7Grouping reproduces the paper's Fig. 7 worked example: deadlines
// {5,8,9,13,14} hours give 0.80 cal/h at T_Cali=5 but Algorithm 1 finds
// T_Cali=4 with 0.66 cal/h.
func TestFig7Grouping(t *testing.T) {
	gates, pTar := profilesWithDeadlines(5, 8, 9, 13, 14)
	naive := frequencyFor(gates, pTar, 5)
	if math.Abs(naive-0.80) > 0.01 {
		t.Errorf("frequency at T_Cali=5h = %.3f, want 0.80 (Fig. 7b)", naive)
	}
	gr, err := AssignGroups(gates, pTar)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr.TCaliHours-4) > 1e-9 {
		t.Errorf("Algorithm 1 chose T_Cali=%.3f, want 4 (Fig. 7c)", gr.TCaliHours)
	}
	if f := gr.TotalFrequency(); math.Abs(f-2.0/3) > 0.01 {
		t.Errorf("optimized frequency %.3f, want 0.66 (Fig. 7c)", f)
	}
	// Group structure: g0 in k=1, g1,g2 in k=2, g3,g4 in k=3.
	if len(gr.Groups[1]) != 1 || len(gr.Groups[2]) != 2 || len(gr.Groups[3]) != 2 {
		t.Errorf("groups %v, want sizes {1:1, 2:2, 3:2}", gr.Groups)
	}
}

// TestGroupingRespectsDeadlines (property): every gate's assigned period
// k·T_Cali never exceeds its drift deadline.
func TestGroupingRespectsDeadlines(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(uint64(seed))
		n := 3 + int(r()%40)
		var hours []float64
		for i := 0; i < n; i++ {
			hours = append(hours, 2+float64(r()%2000)/100)
		}
		gates, pTar := profilesWithDeadlines(hours...)
		gr, err := AssignGroups(gates, pTar)
		if err != nil {
			return false
		}
		for i := range gates {
			period := float64(gr.Period[gates[i].GateID]) * gr.TCaliHours
			if period > gates[i].DeadlineHours(pTar)+1e-9 {
				return false
			}
		}
		// Algorithm 1 must never beat... be beaten by the naive T_min
		// choice.
		tMin := math.Inf(1)
		for i := range gates {
			if d := gates[i].DeadlineHours(pTar); d < tMin {
				tMin = d
			}
		}
		return gr.TotalFrequency() <= frequencyFor(gates, pTar, tMin)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestRand(seed uint64) func() uint64 {
	s := seed*2862933555777941757 + 3037000493
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

func TestDueGates(t *testing.T) {
	gates, pTar := profilesWithDeadlines(5, 8, 9, 13, 14)
	gr, err := AssignGroups(gates, pTar)
	if err != nil {
		t.Fatal(err)
	}
	// Interval 6 (k=1,2,3 all divide): every gate due.
	if got := gr.DueGates(6); len(got) != 5 {
		t.Errorf("interval 6 due=%v, want all 5", got)
	}
	// Interval 1: only the k=1 group.
	if got := gr.DueGates(1); len(got) != 1 {
		t.Errorf("interval 1 due=%v, want only the fastest gate", got)
	}
}

func TestPTargetInvertsLER(t *testing.T) {
	for _, d := range []int{11, 25, 41} {
		for _, ler := range []float64{1e-8, 1e-10, 1e-12} {
			p, err := PTarget(d, ler, noise.Alpha, noise.Threshold)
			if err != nil {
				t.Fatalf("d=%d ler=%g: %v", d, ler, err)
			}
			// Round-trip through Eq. (4).
			back := noise.Alpha * math.Pow(p/noise.Threshold, float64(d+1)/2)
			if math.Abs(math.Log(back/ler)) > 1e-6 {
				t.Errorf("d=%d: round-trip LER %.3g vs %.3g", d, back, ler)
			}
			if p >= noise.Threshold {
				t.Errorf("d=%d: p_tar=%.3g above threshold", d, p)
			}
		}
	}
	if _, err := PTarget(3, 0.5, noise.Alpha, noise.Threshold); err == nil {
		t.Error("PTarget should reject targets needing p above threshold")
	}
}

func TestMinDistanceFor(t *testing.T) {
	d, err := MinDistanceFor(1e-10, 2e-3, noise.Alpha, noise.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	if d%2 == 0 || d < 3 {
		t.Fatalf("invalid distance %d", d)
	}
	p, err := PTarget(d, 1e-10, noise.Alpha, noise.Threshold)
	if err != nil || p < 2e-3 {
		t.Errorf("d=%d gives p_tar=%.3g (err=%v), want ≥ 2e-3", d, p, err)
	}
	if d > 3 {
		if p2, err2 := PTarget(d-2, 1e-10, noise.Alpha, noise.Threshold); err2 == nil && p2 >= 2e-3 {
			t.Errorf("d-2=%d already satisfies the floor (p=%.3g); MinDistanceFor not minimal", d-2, p2)
		}
	}
}

func mkTasks() []Task {
	return []Task{
		{GateID: 0, Region: []int{0, 1, 2}, CaliHours: 0.10},
		{GateID: 1, Region: []int{2, 3}, CaliHours: 0.05}, // overlaps task 0
		{GateID: 2, Region: []int{10, 11}, CaliHours: 0.08},
		{GateID: 3, Region: []int{20, 21, 22, 23}, CaliHours: 0.12},
		{GateID: 4, Region: []int{30}, CaliHours: 0.03},
	}
}

func TestSequentialSchedule(t *testing.T) {
	s, err := BuildSchedule(mkTasks(), StrategySequential, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Batches) != 5 {
		t.Errorf("%d batches, want 5", len(s.Batches))
	}
	if math.Abs(s.TotalHours()-0.38) > 1e-9 {
		t.Errorf("makespan %.3f, want 0.38 (sum of all)", s.TotalHours())
	}
}

func TestBulkScheduleRespectsCrosstalk(t *testing.T) {
	s, err := BuildSchedule(mkTasks(), StrategyBulk, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks 0 and 1 overlap regions: must be in different batches.
	for _, b := range s.Batches {
		has0, has1 := false, false
		for _, task := range b.Tasks {
			if task.GateID == 0 {
				has0 = true
			}
			if task.GateID == 1 {
				has1 = true
			}
		}
		if has0 && has1 {
			t.Error("bulk batch contains both crosstalk-conflicting tasks")
		}
	}
	if len(s.Batches) >= 5 {
		t.Errorf("bulk made %d batches; expected parallelism", len(s.Batches))
	}
}

// TestAdaptiveBeatsBoth: on a workload with heterogeneous region sizes the
// adaptive Δd sweep must have space-time cost ≤ both naive strategies
// (§8.2.3's 2.89×/3.8× improvements have this as their qualitative core).
func TestAdaptiveBeatsBoth(t *testing.T) {
	tasks := mkTasks()
	seq, _ := BuildSchedule(tasks, StrategySequential, nil, nil, 0)
	bulk, _ := BuildSchedule(tasks, StrategyBulk, nil, nil, 0)
	adp, err := BuildSchedule(tasks, StrategyAdaptive, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if adp.SpaceTimeCost() > seq.SpaceTimeCost()+1e-9 {
		t.Errorf("adaptive cost %.3f > sequential %.3f", adp.SpaceTimeCost(), seq.SpaceTimeCost())
	}
	if adp.SpaceTimeCost() > bulk.SpaceTimeCost()+1e-9 {
		t.Errorf("adaptive cost %.3f > bulk %.3f", adp.SpaceTimeCost(), bulk.SpaceTimeCost())
	}
	// All tasks scheduled exactly once under every strategy.
	for name, s := range map[string]*Schedule{"seq": seq, "bulk": bulk, "adaptive": adp} {
		n := 0
		for _, b := range s.Batches {
			n += len(b.Tasks)
		}
		if n != len(tasks) {
			t.Errorf("%s scheduled %d tasks, want %d", name, n, len(tasks))
		}
	}
}

func TestClusterDependent(t *testing.T) {
	tasks := []Task{
		{GateID: 0, Region: []int{1, 2, 3, 4}, CaliHours: 0.1},
		{GateID: 1, Region: []int{3, 4}, CaliHours: 0.2}, // fully inside task 0's region
		{GateID: 2, Region: []int{99}, CaliHours: 0.05},
	}
	out := ClusterDependent(tasks)
	if len(out) != 2 {
		t.Fatalf("%d clusters, want 2", len(out))
	}
	// The merged cluster runs as long as its slowest member.
	for _, c := range out {
		if len(c.Region) == 4 && c.CaliHours != 0.2 {
			t.Errorf("merged cluster hours %.2f, want 0.2", c.CaliHours)
		}
	}
}

// TestGroupingWithLinearDrift: Algorithm 1 is drift-model agnostic (§4
// says the exponential model is replaceable); a linear law with matched
// deadlines must produce the identical grouping.
func TestGroupingWithLinearDrift(t *testing.T) {
	expGates, pTar := profilesWithDeadlines(5, 8, 9, 13, 14)
	var linGates []GateProfile
	for _, g := range expGates {
		linGates = append(linGates, GateProfile{
			GateID: g.GateID,
			Drift:  noise.LinearFromExponential(g.Drift.(noise.Drift), pTar),
		})
	}
	ge, err := AssignGroups(expGates, pTar)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := AssignGroups(linGates, pTar)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ge.TCaliHours-gl.TCaliHours) > 1e-9 {
		t.Errorf("T_Cali differs across drift models: %.3f vs %.3f", ge.TCaliHours, gl.TCaliHours)
	}
	for id, k := range ge.Period {
		if gl.Period[id] != k {
			t.Errorf("gate %d grouped k=%d (exp) vs k=%d (linear)", id, k, gl.Period[id])
		}
	}
}

func TestSumDiameterLoss(t *testing.T) {
	coord := func(q int) (int, int) { return q / 10, q % 10 }
	est := SumDiameterLoss{Coord: coord}
	// Four scattered single qubits: 4 units (the paper's "four single-qubit
	// isolations" budget).
	if got := est.Loss([][]int{{0}, {22}, {47}, {85}}); got != 4 {
		t.Errorf("four singles cost %d, want 4", got)
	}
	// One diameter-4 region (rows 2..5, same column): 4 units ("a region
	// with a diameter of 4").
	if got := est.Loss([][]int{{21, 31, 41, 51}}); got != 4 {
		t.Errorf("diameter-4 region cost %d, want 4", got)
	}
	// Nil coord falls back to qubit count.
	if got := (SumDiameterLoss{}).Loss([][]int{{1, 2, 3}}); got != 3 {
		t.Errorf("nil-coord cost %d, want 3", got)
	}
}
