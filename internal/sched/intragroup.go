package sched

import (
	"fmt"
	"math"
	"sort"
)

// Task is one calibration workload inside an interval: a gate with its
// isolation region and duration.
type Task struct {
	GateID    int
	Region    []int // qubits isolated during calibration (gate qubits + nbr)
	CaliHours float64
	// Members lists all gate IDs calibrated by this task (≥1 after
	// dependency clustering); empty means just GateID.
	Members []int
}

// MemberGates returns the task's gate IDs (GateID alone if Members unset).
func (t *Task) MemberGates() []int {
	if len(t.Members) == 0 {
		return []int{t.GateID}
	}
	return t.Members
}

// Batch is a set of tasks calibrated concurrently.
type Batch struct {
	Tasks []Task
	// Hours is the batch duration: the longest task in it.
	Hours float64
	// DistanceLoss is the worst-case code-distance cost of isolating all
	// the batch's regions simultaneously.
	DistanceLoss int
}

// Schedule is an ordered list of batches executed within one calibration
// interval.
type Schedule struct {
	Batches []Batch
	// MaxDeltaD is the Δd constraint the schedule was built under.
	MaxDeltaD int
}

// TotalHours returns the schedule makespan T(Cal).
func (s *Schedule) TotalHours() float64 {
	t := 0.0
	for _, b := range s.Batches {
		t += b.Hours
	}
	return t
}

// MaxLoss returns the largest batch distance loss.
func (s *Schedule) MaxLoss() int {
	m := 0
	for _, b := range s.Batches {
		if b.DistanceLoss > m {
			m = b.DistanceLoss
		}
	}
	return m
}

// SpaceTimeCost is the §5.3/§8.2.3 metric: Δd × T(Cal), the product of
// temporary distance loss and total calibration time.
func (s *Schedule) SpaceTimeCost() float64 {
	return float64(s.MaxLoss()) * s.TotalHours()
}

// Conflicter reports whether two tasks cannot be calibrated concurrently
// (the crosstalk constraint |C_t| ≤ 1 of §5.1).
type Conflicter interface {
	Conflicts(a, b *Task) bool
}

// RegionOverlapConflicts declares tasks conflicting when their isolation
// regions share a qubit — calibration pulses on one would disturb the
// other's target.
type RegionOverlapConflicts struct{}

// Conflicts implements Conflicter.
func (RegionOverlapConflicts) Conflicts(a, b *Task) bool {
	set := map[int]bool{}
	for _, q := range a.Region {
		set[q] = true
	}
	for _, q := range b.Region {
		if set[q] {
			return true
		}
	}
	return false
}

// LossEstimator maps a set of concurrently isolated regions to the
// worst-case code distance loss. internal/runtime provides an exact
// deformation-backed implementation; DiameterLoss is the fast geometric
// default (the paper's "four single-qubit isolations or one region of
// diameter 4" budgeting, §7.3).
type LossEstimator interface {
	Loss(regions [][]int) int
}

// DiameterLoss estimates distance loss as the number of isolated qubits
// projected on each logical axis, taking the worse axis: a single qubit
// costs 1, a diameter-w region costs w.
type DiameterLoss struct {
	// Coord returns the (row, col) of a qubit on the patch's logical grid;
	// nil treats each region as costing its qubit count (upper bound).
	Coord func(q int) (row, col int)
}

// SumDiameterLoss is the paper's §7.3 Δd accounting: each concurrently
// isolated region consumes budget equal to its diameter (a single-qubit
// isolation costs 1, a diameter-w region costs w), and budgets add across
// regions — "four single-qubit isolations or the isolation of a larger
// region with a diameter of 4".
type SumDiameterLoss struct {
	// Coord returns the (row, col) of a qubit on the patch's logical grid;
	// nil treats each region as costing its qubit count (upper bound).
	Coord func(q int) (row, col int)
}

// Loss implements LossEstimator.
func (d SumDiameterLoss) Loss(regions [][]int) int {
	total := 0
	for _, reg := range regions {
		if len(reg) == 0 {
			continue
		}
		if d.Coord == nil {
			total += len(reg)
			continue
		}
		minR, maxR := 1<<30, -(1 << 30)
		minC, maxC := 1<<30, -(1 << 30)
		for _, q := range reg {
			r, c := d.Coord(q)
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		diam := maxR - minR
		if maxC-minC > diam {
			diam = maxC - minC
		}
		total += diam + 1
	}
	return total
}

// Loss implements LossEstimator.
func (d DiameterLoss) Loss(regions [][]int) int {
	if d.Coord == nil {
		n := 0
		for _, r := range regions {
			n += len(r)
		}
		return n
	}
	rows := map[int]bool{}
	cols := map[int]bool{}
	for _, reg := range regions {
		for _, q := range reg {
			r, c := d.Coord(q)
			rows[r] = true
			cols[c] = true
		}
	}
	if len(rows) > len(cols) {
		return len(rows)
	}
	return len(cols)
}

// Strategy selects the intra-group scheduling policy compared in §8.2.3.
type Strategy int

// Scheduling strategies.
const (
	// StrategySequential calibrates one gate at a time.
	StrategySequential Strategy = iota
	// StrategyBulk calibrates as many gates as crosstalk allows, ignoring
	// distance loss.
	StrategyBulk
	// StrategyAdaptive sweeps the Δd constraint and picks the schedule
	// minimizing space-time cost (CaliQEC's policy).
	StrategyAdaptive
)

func (s Strategy) String() string {
	switch s {
	case StrategySequential:
		return "sequential"
	case StrategyBulk:
		return "bulk"
	case StrategyAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ClusterDependent merges tasks whose regions overlap heavily (≥ half of
// the smaller region shared) into joint tasks, reflecting §5.3(1): 2Q-gate
// calibrations depending on 1Q results are scheduled collectively when
// their neighbourhoods coincide.
func ClusterDependent(tasks []Task) []Task {
	n := len(tasks)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	overlap := func(a, b []int) int {
		set := map[int]bool{}
		for _, q := range a {
			set[q] = true
		}
		n := 0
		for _, q := range b {
			if set[q] {
				n++
			}
		}
		return n
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			small := len(tasks[i].Region)
			if len(tasks[j].Region) < small {
				small = len(tasks[j].Region)
			}
			if small == 0 {
				continue
			}
			if 2*overlap(tasks[i].Region, tasks[j].Region) >= small {
				pi, pj := find(i), find(j)
				if pi != pj {
					parent[pi] = pj
				}
			}
		}
	}
	merged := map[int]*Task{}
	var order []int
	for i := 0; i < n; i++ {
		root := find(i)
		m, ok := merged[root]
		if !ok {
			cp := tasks[i]
			cp.Region = append([]int(nil), tasks[i].Region...)
			cp.Members = append([]int(nil), tasks[i].MemberGates()...)
			merged[root] = &cp
			order = append(order, root)
			continue
		}
		// Union regions; joint calibration runs as long as the longest
		// member; keep the first gate ID as the cluster representative.
		seen := map[int]bool{}
		for _, q := range m.Region {
			seen[q] = true
		}
		for _, q := range tasks[i].Region {
			if !seen[q] {
				m.Region = append(m.Region, q)
			}
		}
		if tasks[i].CaliHours > m.CaliHours {
			m.CaliHours = tasks[i].CaliHours
		}
		m.Members = append(m.Members, tasks[i].MemberGates()...)
	}
	out := make([]Task, 0, len(order))
	for _, root := range order {
		sort.Ints(merged[root].Region)
		out = append(out, *merged[root])
	}
	return out
}

// BuildSchedule packs tasks into batches under a strategy. For
// StrategyAdaptive, maxDeltaD bounds the Δd sweep (the paper uses 4).
func BuildSchedule(tasks []Task, strat Strategy, conflict Conflicter, loss LossEstimator, maxDeltaD int) (*Schedule, error) {
	if conflict == nil {
		conflict = RegionOverlapConflicts{}
	}
	if loss == nil {
		loss = DiameterLoss{}
	}
	switch strat {
	case StrategySequential:
		s := &Schedule{MaxDeltaD: 0}
		for _, t := range tasks {
			s.Batches = append(s.Batches, Batch{
				Tasks:        []Task{t},
				Hours:        t.CaliHours,
				DistanceLoss: loss.Loss([][]int{t.Region}),
			})
		}
		return s, nil
	case StrategyBulk:
		return greedyPack(tasks, conflict, loss, math.MaxInt32), nil
	case StrategyAdaptive:
		if maxDeltaD < 1 {
			maxDeltaD = 4
		}
		var best *Schedule
		for dd := 1; dd <= maxDeltaD; dd++ {
			s := greedyPack(tasks, conflict, loss, dd)
			if best == nil || s.SpaceTimeCost() < best.SpaceTimeCost() {
				best = s
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("sched: unknown strategy %v", strat)
}

// greedyPack implements §5.3(2): sort tasks by region size descending,
// repeatedly open a batch and add every task that neither conflicts with
// the batch nor pushes its distance loss beyond maxLoss.
func greedyPack(tasks []Task, conflict Conflicter, loss LossEstimator, maxLoss int) *Schedule {
	pending := append([]Task(nil), tasks...)
	sort.SliceStable(pending, func(i, j int) bool {
		return len(pending[i].Region) > len(pending[j].Region)
	})
	s := &Schedule{MaxDeltaD: maxLoss}
	used := make([]bool, len(pending))
	remaining := len(pending)
	for remaining > 0 {
		var b Batch
		var regions [][]int
		for i := range pending {
			if used[i] {
				continue
			}
			ok := true
			for bi := range b.Tasks {
				if conflict.Conflicts(&pending[i], &b.Tasks[bi]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cand := append(append([][]int(nil), regions...), pending[i].Region)
			l := loss.Loss(cand)
			if len(b.Tasks) > 0 && l > maxLoss {
				continue
			}
			used[i] = true
			remaining--
			b.Tasks = append(b.Tasks, pending[i])
			regions = cand
			b.DistanceLoss = l
			if pending[i].CaliHours > b.Hours {
				b.Hours = pending[i].CaliHours
			}
		}
		if len(b.Tasks) == 0 {
			break // defensive: nothing schedulable
		}
		s.Batches = append(s.Batches, b)
	}
	return s
}
