// Package sched implements CaliQEC's compilation-time calibration
// scheduling (paper §5): the optimization objective min Σ_g 1/T_g subject
// to the drift deadline T_g ≤ T_drift,ptar[g] and the crosstalk constraint,
// solved by drift-based calibration grouping (Algorithm 1) plus intra-group
// scheduling (dependency clustering, crosstalk-aware greedy batching, and
// the Δd-constrained space-time cost search of §5.3).
package sched

import (
	"caliqec/internal/noise"
	"fmt"
	"math"
	"sort"
)

// GateProfile is the scheduler's view of one calibratable gate, produced by
// preparation-time characterization. Drift is any noise.Law — the paper's
// exponential model or the linear alternative (§4 notes the model is
// replaceable; the scheduling machinery only consumes deadlines).
type GateProfile struct {
	GateID    int
	Drift     noise.Law
	CaliHours float64
	Nbr       []int // crosstalk neighbourhood (qubit IDs)
	Qubits    []int // the gate's own qubits
}

// DeadlineHours returns T_drift,ptar[g]: the time until the gate's error
// rate reaches pTar, i.e. its calibration deadline (§5.1).
func (g *GateProfile) DeadlineHours(pTar float64) float64 {
	return g.Drift.TimeToReach(pTar)
}

// Grouping is the output of Algorithm 1.
type Grouping struct {
	TCaliHours float64         // the chosen base calibration interval
	Groups     map[int][]int   // k -> gate IDs with period k·TCali
	Period     map[int]int     // gate ID -> k
	Deadline   map[int]float64 // gate ID -> drift deadline used
}

// TotalFrequency returns Σ_g 1/T_g in calibrations per hour (Eq. 3).
func (gr *Grouping) TotalFrequency() float64 {
	f := 0.0
	for k, gates := range gr.Groups {
		f += float64(len(gates)) / (float64(k) * gr.TCaliHours)
	}
	return f
}

// DueGates returns the gate IDs whose group is due in the n-th calibration
// interval (intervals are 1-indexed; group k is due when n mod k == 0).
func (gr *Grouping) DueGates(n int) []int {
	var out []int
	for k, gates := range gr.Groups {
		if n%k == 0 {
			out = append(out, gates...)
		}
	}
	sort.Ints(out)
	return out
}

// frequencyFor evaluates Eq. (3) for a candidate base interval: each gate's
// period is the largest multiple of tCali not exceeding its deadline.
func frequencyFor(gates []GateProfile, pTar, tCali float64) float64 {
	f := 0.0
	for i := range gates {
		d := gates[i].DeadlineHours(pTar)
		k := int(math.Floor(d / tCali))
		if k < 1 {
			return math.Inf(1) // deadline shorter than the interval: infeasible
		}
		f += 1 / (float64(k) * tCali)
	}
	return f
}

// AssignGroups implements Algorithm 1 (Calibration Group Assignment): it
// scans candidate base intervals T_drift[g]/k — values at or just below the
// minimum deadline, where deadlines align with integer multiples — picks
// the one minimizing total calibration frequency (preferring larger
// intervals on ties), and buckets every gate into its group.
func AssignGroups(gates []GateProfile, pTar float64) (*Grouping, error) {
	if len(gates) == 0 {
		return nil, fmt.Errorf("sched: no gates to group")
	}
	tMin := math.Inf(1)
	for i := range gates {
		d := gates[i].DeadlineHours(pTar)
		if d <= 0 {
			return nil, fmt.Errorf("sched: gate %d already beyond p_tar=%g (deadline %.2fh)", gates[i].GateID, pTar, d)
		}
		if d < tMin {
			tMin = d
		}
	}
	// Candidate intervals: tMin itself plus each gate's deadline divided by
	// the smallest k bringing it to ≤ tMin.
	cands := []float64{tMin}
	for i := range gates {
		d := gates[i].DeadlineHours(pTar)
		k := math.Ceil(d / tMin)
		if k >= 1 {
			cands = append(cands, d/k)
		}
	}
	best, bestF := tMin, frequencyFor(gates, pTar, tMin)
	for _, c := range cands {
		f := frequencyFor(gates, pTar, c)
		const eps = 1e-12
		if f < bestF-eps || (math.Abs(f-bestF) <= eps && c > best) {
			best, bestF = c, f
		}
	}
	if math.IsInf(bestF, 1) {
		return nil, fmt.Errorf("sched: no feasible base interval")
	}
	gr := &Grouping{
		TCaliHours: best,
		Groups:     map[int][]int{},
		Period:     map[int]int{},
		Deadline:   map[int]float64{},
	}
	for i := range gates {
		d := gates[i].DeadlineHours(pTar)
		k := int(math.Floor(d / best))
		if k < 1 {
			k = 1
		}
		gr.Groups[k] = append(gr.Groups[k], gates[i].GateID)
		gr.Period[gates[i].GateID] = k
		gr.Deadline[gates[i].GateID] = d
	}
	for k := range gr.Groups {
		sort.Ints(gr.Groups[k])
	}
	return gr, nil
}

// PTarget computes the targeted physical error rate from the available code
// distance and the target logical error rate, inverting Eq. (4):
// p_tar = p_th · (LER_tar/α)^(2/(d+1)). It returns an error when no
// sub-threshold rate can satisfy the target at this distance.
func PTarget(d int, lerTar, alpha, pth float64) (float64, error) {
	if d < 3 || lerTar <= 0 {
		return 0, fmt.Errorf("sched: invalid PTarget inputs d=%d lerTar=%g", d, lerTar)
	}
	p := pth * math.Pow(lerTar/alpha, 2/float64(d+1))
	if p >= pth {
		return 0, fmt.Errorf("sched: distance %d cannot reach LER %g below threshold (needs p_tar=%.3g ≥ p_th)", d, lerTar, p)
	}
	return p, nil
}

// MinDistanceFor returns the smallest (odd) code distance whose p_tar under
// Eq. (4) is at least pFloor — i.e. large enough that an achievable
// physical error rate sustains LER_tar. It grows d until p_tar ≥ pFloor.
func MinDistanceFor(lerTar, pFloor, alpha, pth float64) (int, error) {
	for d := 3; d <= 201; d += 2 {
		p, err := PTarget(d, lerTar, alpha, pth)
		if err != nil {
			continue
		}
		if p >= pFloor {
			return d, nil
		}
	}
	return 0, fmt.Errorf("sched: no distance ≤ 201 sustains LER %g with p ≥ %g", lerTar, pFloor)
}
