package circuit

import (
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.Reset(0, 0, 1, 2, 3)
	b.H(0)
	b.CX(0, 1, 1, 2)
	recs := b.M(0.01, 0, 1)
	if recs[0] != 0 || recs[1] != 1 {
		t.Errorf("record indices %v", recs)
	}
	b.Detector(recs[0], recs[1])
	b.Observable(0, recs[0])
	c := b.Build()
	if c.NumMeas != 2 || c.NumDetectors != 1 || c.NumObs != 1 {
		t.Errorf("counts: meas=%d det=%d obs=%d", c.NumMeas, c.NumDetectors, c.NumObs)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorRel(t *testing.T) {
	b := NewBuilder(2)
	b.M(0, 0)
	b.M(0, 1)
	idx := b.DetectorRel(-1, -2)
	if idx != 0 {
		t.Errorf("detector index %d", idx)
	}
	c := b.Build()
	var det *Instruction
	for i := range c.Instructions {
		if c.Instructions[i].Op == OpDetector {
			det = &c.Instructions[i]
		}
	}
	if det == nil || det.Recs[0] != 1 || det.Recs[1] != 0 {
		t.Errorf("rel resolution wrong: %+v", det)
	}
}

func TestRepeatUnrolls(t *testing.T) {
	b := NewBuilder(1)
	b.Repeat(5, func(round int) {
		b.M(0, 0)
		if round > 0 {
			b.DetectorRel(-1, -2)
		}
	})
	c := b.Build()
	if c.NumMeas != 5 || c.NumDetectors != 4 {
		t.Errorf("meas=%d det=%d", c.NumMeas, c.NumDetectors)
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	c := &Circuit{NumQubits: 2, Instructions: []Instruction{{Op: OpH, Targets: []int{5}}}}
	if err := c.Validate(); err == nil {
		t.Error("out-of-range qubit not caught")
	}
	c2 := &Circuit{NumQubits: 2, Instructions: []Instruction{{Op: OpCX, Targets: []int{1, 1}}}}
	if err := c2.Validate(); err == nil {
		t.Error("self-CX not caught")
	}
	c3 := &Circuit{NumQubits: 1, Instructions: []Instruction{{Op: OpXError, Targets: []int{0}, Arg: 1.5}}}
	if err := c3.Validate(); err == nil {
		t.Error("probability > 1 not caught")
	}
}

func TestBuilderPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(3).CX(0, 1, 2)
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder(2)
	b.H(0)
	b.Depolarize2(0.001, 0, 1)
	r := b.M(0.01, 1)
	b.Detector(r[0])
	c := b.Build()
	s := c.String()
	for _, want := range []string{"H 0", "DEPOLARIZE2(0.001) 0 1", "M(0.01) 1", "DETECTOR D0 rec[0]"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestCountOps(t *testing.T) {
	b := NewBuilder(2)
	b.H(0)
	b.H(1)
	b.CX(0, 1)
	c := b.Build()
	if c.CountOps(OpH) != 2 || c.CountOps(OpCX) != 1 {
		t.Error("CountOps wrong")
	}
}

func TestNoiseZeroSkipped(t *testing.T) {
	b := NewBuilder(1)
	b.Depolarize1(0, 0)
	b.XError(0, 0)
	c := b.Build()
	if len(c.Instructions) != 0 {
		t.Errorf("zero-probability noise should be elided, got %d instrs", len(c.Instructions))
	}
}

func TestRoundStamping(t *testing.T) {
	b := NewBuilder(2)
	b.Reset(0, 0, 1)
	b.Tick()
	b.Repeat(3, func(round int) {
		recs := b.M(0, 0)
		if round == 0 {
			b.Detector(recs[0])
		} else {
			b.DetectorRel(-1, -2)
		}
		b.Tick()
	})
	recs := b.M(0, 1)
	b.Detector(recs[0])
	b.Observable(0, recs[0])
	c := b.Build()
	if c.NumRounds != 5 {
		t.Fatalf("NumRounds=%d, want 5 (detectors at rounds 1..4)", c.NumRounds)
	}
	want := []int{1, 2, 3, 4}
	got := c.DetectorRounds()
	if len(got) != len(want) {
		t.Fatalf("DetectorRounds len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("detector %d round=%d, want %d", i, got[i], want[i])
		}
	}
	// Measurement provenance: the three loop measurements land in rounds
	// 1,2,3; the final readout in round 4.
	var mRounds []int
	for _, in := range c.Instructions {
		if in.Op == OpM {
			mRounds = append(mRounds, in.Round)
		}
	}
	wantM := []int{1, 2, 3, 4}
	for i := range wantM {
		if mRounds[i] != wantM[i] {
			t.Errorf("measurement %d round=%d, want %d", i, mRounds[i], wantM[i])
		}
	}
}

func TestRoundlessCircuitStillValid(t *testing.T) {
	// Hand-assembled literals (no Builder, no rounds) must keep validating:
	// all-zero rounds are trivially monotone and NumRounds==0 disables the
	// range check.
	c := &Circuit{
		Instructions: []Instruction{
			{Op: OpM, Targets: []int{0}},
			{Op: OpDetector, Recs: []int{0}, Index: 0},
		},
		NumQubits: 1, NumMeas: 1, NumDetectors: 1,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.DetectorRounds() != nil {
		t.Error("DetectorRounds should be nil without round structure")
	}
}

func TestValidateDetectorRoundMonotone(t *testing.T) {
	c := &Circuit{
		Instructions: []Instruction{
			{Op: OpM, Targets: []int{0, 1}},
			{Op: OpDetector, Recs: []int{0}, Index: 0, Round: 2},
			{Op: OpDetector, Recs: []int{1}, Index: 1, Round: 1},
		},
		NumQubits: 2, NumMeas: 2, NumDetectors: 2, NumRounds: 3,
	}
	if err := c.Validate(); err == nil {
		t.Fatal("want error for decreasing detector rounds")
	}
	c.Instructions[2].Round = 5 // out of [0, NumRounds)
	if err := c.Validate(); err == nil {
		t.Fatal("want error for detector round out of range")
	}
}
