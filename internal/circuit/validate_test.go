package circuit

import (
	"math"
	"strings"
	"testing"
)

// mustContain asserts err is non-nil and mentions substr.
func mustContain(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("got nil error, want one containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestFinishValidCircuit(t *testing.T) {
	b := NewBuilder(2)
	b.Reset(0.01, 0, 1)
	recs := b.M(0.02, 0, 1)
	b.Detector(recs[0])
	b.DetectorRel(-1)
	b.Observable(0, recs[0], recs[1])
	c, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if c.NumDetectors != 2 || c.NumObs != 1 || c.NumMeas != 2 {
		t.Errorf("counts: detectors=%d obs=%d meas=%d, want 2/1/2", c.NumDetectors, c.NumObs, c.NumMeas)
	}
}

// Detector/Observable no longer panic on bad record references: the error is
// deferred to Validate so tooling (`caliqec vet`) can report it.
func TestFinishReportsBadDetectorRec(t *testing.T) {
	b := NewBuilder(1)
	b.M(0, 0)
	b.Detector(5) // only rec 0 exists
	_, err := b.Finish()
	mustContain(t, err, "rec 5 out of range")
}

func TestFinishReportsNonNegativeRelOffset(t *testing.T) {
	b := NewBuilder(1)
	b.M(0, 0)
	b.DetectorRel(0) // rec[-1] is the last measurement; 0 is at-or-beyond the record
	_, err := b.Finish()
	mustContain(t, err, "out of range")
}

func TestFinishReportsBadObservableRec(t *testing.T) {
	b := NewBuilder(1)
	b.M(0, 0)
	b.Observable(0, 7)
	_, err := b.Finish()
	mustContain(t, err, "rec 7 out of range")
}

func TestValidateDuplicateRec(t *testing.T) {
	b := NewBuilder(1)
	b.M(0, 0)
	b.Detector(0, 0) // the duplicate XORs itself away
	_, err := b.Finish()
	mustContain(t, err, "referenced twice")
}

func TestValidateDetectorIndexOrder(t *testing.T) {
	b := NewBuilder(1)
	b.M(0, 0)
	b.DetectorRel(-1)
	b.DetectorRel(-1)
	c, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Swap the two detector indices: emission order no longer matches.
	for i := range c.Instructions {
		if c.Instructions[i].Op == OpDetector {
			c.Instructions[i].Index = 1 - c.Instructions[i].Index
		}
	}
	mustContain(t, c.Validate(), "dense and in emission order")
}

func TestValidateProbabilityRange(t *testing.T) {
	b := NewBuilder(1)
	b.M(1.5, 0)
	_, err := b.Finish()
	mustContain(t, err, "probability 1.5 out of [0,1]")

	b = NewBuilder(1)
	b.M(math.NaN(), 0)
	_, err = b.Finish()
	mustContain(t, err, "out of [0,1]")

	b = NewBuilder(1)
	b.Reset(-0.25, 0)
	_, err = b.Finish()
	mustContain(t, err, "out of [0,1]")
}

func TestValidateObservableBounds(t *testing.T) {
	c := &Circuit{
		NumQubits: 1, NumMeas: 1, NumObs: 1,
		Instructions: []Instruction{
			{Op: OpM, Targets: []int{0}},
			{Op: OpObservable, Recs: []int{0}, Index: -2},
		},
	}
	mustContain(t, c.Validate(), "negative observable index")

	c.Instructions[1].Index = 3 // NumObs says only observable 0 exists
	mustContain(t, c.Validate(), "observable index 3 but NumObs=1")
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build should panic on a circuit that fails validation")
		}
	}()
	b := NewBuilder(1)
	b.M(0, 0)
	b.Detector(9)
	b.Build()
}
