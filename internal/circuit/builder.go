package circuit

// Builder incrementally assembles a Circuit. It tracks the measurement
// record so callers can reference measurements by relative offset (Stim's
// rec[-k] convention) and have them resolved to absolute indices. It also
// tracks the current QEC round (the number of Ticks emitted so far) and
// stamps it onto measurements and detectors, so the fully unrolled circuit
// keeps its round structure.
type Builder struct {
	c    Circuit
	tick int // ticks emitted so far == current round index
}

// NewBuilder returns a builder for a circuit over numQubits qubits.
func NewBuilder(numQubits int) *Builder {
	return &Builder{c: Circuit{NumQubits: numQubits}}
}

// NumQubits returns the qubit count the builder was created with.
func (b *Builder) NumQubits() int { return b.c.NumQubits }

// MeasCount returns the number of measurement record bits appended so far.
func (b *Builder) MeasCount() int { return b.c.NumMeas }

func (b *Builder) push(in Instruction) {
	b.c.Instructions = append(b.c.Instructions, in)
}

// H appends Hadamards on the given qubits.
func (b *Builder) H(qubits ...int) {
	if len(qubits) > 0 {
		b.push(Instruction{Op: OpH, Targets: qubits})
	}
}

// S appends phase gates on the given qubits.
func (b *Builder) S(qubits ...int) {
	if len(qubits) > 0 {
		b.push(Instruction{Op: OpS, Targets: qubits})
	}
}

// CX appends CNOTs over (control, target) pairs.
func (b *Builder) CX(pairs ...int) {
	if len(pairs)%2 != 0 {
		panic("circuit: CX needs (control,target) pairs")
	}
	if len(pairs) > 0 {
		b.push(Instruction{Op: OpCX, Targets: pairs})
	}
}

// CZ appends controlled-Z over qubit pairs.
func (b *Builder) CZ(pairs ...int) {
	if len(pairs)%2 != 0 {
		panic("circuit: CZ needs pairs")
	}
	if len(pairs) > 0 {
		b.push(Instruction{Op: OpCZ, Targets: pairs})
	}
}

// Swap appends SWAPs over qubit pairs.
func (b *Builder) Swap(pairs ...int) {
	if len(pairs)%2 != 0 {
		panic("circuit: Swap needs pairs")
	}
	if len(pairs) > 0 {
		b.push(Instruction{Op: OpSwap, Targets: pairs})
	}
}

// Reset appends |0> resets with reset error probability p.
func (b *Builder) Reset(p float64, qubits ...int) {
	if len(qubits) > 0 {
		b.push(Instruction{Op: OpReset, Targets: qubits, Arg: p})
	}
}

// ResetX appends |+> resets with reset error probability p.
func (b *Builder) ResetX(p float64, qubits ...int) {
	if len(qubits) > 0 {
		b.push(Instruction{Op: OpResetX, Targets: qubits, Arg: p})
	}
}

// M appends Z-basis measurements with readout flip probability p and
// returns the absolute record indices, one per qubit in order.
func (b *Builder) M(p float64, qubits ...int) []int {
	return b.measure(OpM, p, qubits)
}

// MX appends X-basis measurements with readout flip probability p.
func (b *Builder) MX(p float64, qubits ...int) []int {
	return b.measure(OpMX, p, qubits)
}

func (b *Builder) measure(op OpCode, p float64, qubits []int) []int {
	if len(qubits) == 0 {
		return nil
	}
	recs := make([]int, len(qubits))
	for i := range qubits {
		recs[i] = b.c.NumMeas + i
	}
	b.push(Instruction{Op: op, Targets: qubits, Arg: p, Round: b.tick})
	b.c.NumMeas += len(qubits)
	return recs
}

// Depolarize1 appends single-qubit depolarizing noise with probability p.
func (b *Builder) Depolarize1(p float64, qubits ...int) {
	if p > 0 && len(qubits) > 0 {
		b.push(Instruction{Op: OpDepolarize1, Targets: qubits, Arg: p})
	}
}

// Depolarize2 appends two-qubit depolarizing noise over pairs.
func (b *Builder) Depolarize2(p float64, pairs ...int) {
	if len(pairs)%2 != 0 {
		panic("circuit: Depolarize2 needs pairs")
	}
	if p > 0 && len(pairs) > 0 {
		b.push(Instruction{Op: OpDepolarize2, Targets: pairs, Arg: p})
	}
}

// XError appends X-flip noise with probability p.
func (b *Builder) XError(p float64, qubits ...int) {
	if p > 0 && len(qubits) > 0 {
		b.push(Instruction{Op: OpXError, Targets: qubits, Arg: p})
	}
}

// ZError appends Z-flip noise with probability p.
func (b *Builder) ZError(p float64, qubits ...int) {
	if p > 0 && len(qubits) > 0 {
		b.push(Instruction{Op: OpZError, Targets: qubits, Arg: p})
	}
}

// YError appends Y-flip noise with probability p.
func (b *Builder) YError(p float64, qubits ...int) {
	if p > 0 && len(qubits) > 0 {
		b.push(Instruction{Op: OpYError, Targets: qubits, Arg: p})
	}
}

// Detector appends a detector over absolute measurement record indices and
// returns the detector's index. Out-of-range record references are not
// checked here: they surface as a deferred error from Validate (via Finish),
// so tools like `caliqec vet` can report a bad circuit instead of crashing
// mid-construction.
func (b *Builder) Detector(recs ...int) int {
	idx := b.c.NumDetectors
	b.push(Instruction{Op: OpDetector, Recs: append([]int(nil), recs...), Index: idx, Round: b.tick})
	b.c.NumDetectors++
	return idx
}

// DetectorRel appends a detector over relative lookback offsets, where -1 is
// the most recent measurement (Stim's rec[-1]). A non-negative offset
// resolves to a record index at or beyond the current record and is
// reported by Validate.
func (b *Builder) DetectorRel(offsets ...int) int {
	recs := make([]int, len(offsets))
	for i, o := range offsets {
		recs[i] = b.c.NumMeas + o
	}
	return b.Detector(recs...)
}

// Observable includes measurement record bits into logical observable obs.
// Repeated calls with the same obs accumulate (XOR) more record bits. As
// with Detector, bad record references are deferred to Validate.
func (b *Builder) Observable(obs int, recs ...int) {
	if obs >= b.c.NumObs {
		b.c.NumObs = obs + 1
	}
	b.push(Instruction{Op: OpObservable, Recs: append([]int(nil), recs...), Index: obs})
}

// Tick appends a timing marker (one QEC-cycle boundary) and advances the
// round counter stamped onto subsequent measurements and detectors.
func (b *Builder) Tick() {
	b.push(Instruction{Op: OpTick})
	b.tick++
}

// Round returns the current round index: the number of Ticks emitted so far.
func (b *Builder) Round() int { return b.tick }

// Repeat invokes body n times; body receives the iteration number. The
// circuit is fully unrolled, so relative measurement references inside body
// resolve against the growing record as expected.
func (b *Builder) Repeat(n int, body func(round int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// Finish finalizes the circuit and returns it along with any validation
// error. The builder must not be used afterwards. This is the entry point
// for tooling (`caliqec vet`) that wants to report a malformed circuit —
// including detector/observable record references accumulated as deferred
// errors — rather than crash.
func (b *Builder) Finish() (*Circuit, error) {
	c := b.c
	b.c = Circuit{}
	b.tick = 0
	for _, in := range c.Instructions {
		if in.Op == OpDetector && in.Round >= c.NumRounds {
			c.NumRounds = in.Round + 1
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Build finalizes and returns the circuit. The builder must not be used
// afterwards. Build panics if the assembled circuit fails validation, since
// in generation code that always indicates a code-generation bug rather
// than bad user input; use Finish to get the error instead.
func (b *Builder) Build() *Circuit {
	c, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return c
}
