// Package circuit defines the stabilizer-circuit intermediate representation
// shared by the Monte-Carlo frame simulator (internal/sim) and the detector
// error model extractor (internal/dem).
//
// The IR mirrors the subset of Stim's language that quantum-error-correction
// sampling needs: Clifford gates, resets and measurements in the Z and X
// bases, circuit-level noise channels, and DETECTOR / OBSERVABLE_INCLUDE
// annotations over the measurement record. Circuits are flat instruction
// lists; repetition is handled by the builder (Repeat) which unrolls rounds
// at construction time, keeping both consumers simple.
package circuit

import (
	"fmt"
	"math"
	"strings"
)

// OpCode enumerates instruction kinds.
type OpCode uint8

// Instruction opcodes.
const (
	// Gates. Targets are qubit indices; two-qubit gates take pairs.
	OpH    OpCode = iota // Hadamard
	OpS                  // Phase gate (Z^{1/2})
	OpCX                 // Controlled-X, targets (control, target) pairs
	OpCZ                 // Controlled-Z, targets as unordered pairs
	OpSwap               // SWAP, targets as pairs

	// State preparation and measurement. Arg on OpM / OpMX is the classical
	// readout flip probability; Arg on resets is the reset error probability
	// (an X error after |0> reset, a Z error after |+> reset).
	OpReset  // reset to |0>
	OpResetX // reset to |+>
	OpM      // Z-basis measurement, appends one record bit per target
	OpMX     // X-basis measurement, appends one record bit per target

	// Noise channels. Arg is the total error probability.
	OpDepolarize1 // uniform {X,Y,Z} with probability Arg
	OpDepolarize2 // uniform 15 two-qubit Paulis with probability Arg, pairs
	OpXError      // X with probability Arg
	OpZError      // Z with probability Arg
	OpYError      // Y with probability Arg

	// Annotations. Detectors and observables reference absolute measurement
	// record indices (resolved by the Builder from relative offsets).
	OpDetector
	OpObservable // observable include; Targets[0] is the observable index in Recs? see Instruction
	OpTick       // timing marker (one QEC-cycle boundary); no effect on state
)

var opNames = map[OpCode]string{
	OpH: "H", OpS: "S", OpCX: "CX", OpCZ: "CZ", OpSwap: "SWAP",
	OpReset: "R", OpResetX: "RX", OpM: "M", OpMX: "MX",
	OpDepolarize1: "DEPOLARIZE1", OpDepolarize2: "DEPOLARIZE2",
	OpXError: "X_ERROR", OpZError: "Z_ERROR", OpYError: "Y_ERROR",
	OpDetector: "DETECTOR", OpObservable: "OBSERVABLE_INCLUDE", OpTick: "TICK",
}

// String returns the Stim-style mnemonic.
func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// IsNoise reports whether the opcode is a stochastic error channel.
func (o OpCode) IsNoise() bool {
	switch o {
	case OpDepolarize1, OpDepolarize2, OpXError, OpZError, OpYError:
		return true
	}
	return false
}

// IsTwoQubit reports whether targets are consumed in pairs.
func (o OpCode) IsTwoQubit() bool {
	switch o {
	case OpCX, OpCZ, OpSwap, OpDepolarize2:
		return true
	}
	return false
}

// Instruction is one IR operation.
type Instruction struct {
	Op      OpCode
	Targets []int   // qubit indices (pairs flattened for two-qubit ops)
	Arg     float64 // probability for noise/measurement ops
	Recs    []int   // absolute measurement indices (OpDetector/OpObservable)
	Index   int     // detector index, or observable index, for annotations
	// Round is the QEC-round index (the number of OpTicks emitted before
	// this instruction) recorded by the Builder on OpDetector, OpM and OpMX.
	// Unrolling Repeat therefore does not erase the round structure: every
	// detector and every measurement record bit keeps its provenance, which
	// is what lets the decoding graph be layered by round and the windowed
	// decoder commit corrections behind a sliding round window.
	Round int
}

// String renders the instruction in a Stim-like textual form.
func (in Instruction) String() string {
	var sb strings.Builder
	sb.WriteString(in.Op.String())
	if in.Arg != 0 { //lint:allow floateq rendering elides an Arg that is exactly the zero value, never computed
		fmt.Fprintf(&sb, "(%g)", in.Arg)
	}
	switch in.Op {
	case OpDetector, OpObservable:
		if in.Op == OpObservable {
			fmt.Fprintf(&sb, " L%d", in.Index)
		} else {
			fmt.Fprintf(&sb, " D%d", in.Index)
		}
		for _, r := range in.Recs {
			fmt.Fprintf(&sb, " rec[%d]", r)
		}
	default:
		for _, t := range in.Targets {
			fmt.Fprintf(&sb, " %d", t)
		}
	}
	return sb.String()
}

// Circuit is a flat, fully unrolled stabilizer circuit.
type Circuit struct {
	Instructions []Instruction
	NumQubits    int
	NumMeas      int // total measurement record bits
	NumDetectors int
	NumObs       int
	// NumRounds is 1 + the largest detector Round, or 0 when the circuit
	// carries no round structure (hand-assembled literals predating round
	// tracking). The Builder computes it in Finish.
	NumRounds int
}

// DetectorRounds returns the round index of every detector, in detector
// order. Returns nil when the circuit carries no round structure.
func (c *Circuit) DetectorRounds() []int {
	if c.NumRounds == 0 {
		return nil
	}
	rounds := make([]int, 0, c.NumDetectors)
	for _, in := range c.Instructions {
		if in.Op == OpDetector {
			rounds = append(rounds, in.Round)
		}
	}
	return rounds
}

// DetectorQubits returns, for every detector, the physical qubit whose
// measurement closed the detector — the qubit of the most recent (highest
// record index) measurement the detector references, which for the
// stabilizer circuits built in this repository is the check's measure
// ancilla. Detectors referencing no record map to -1. Drift observability
// uses this to attribute an anomalous detector fire rate back to hardware:
// a drifting qubit elevates exactly the detectors anchored on (or adjacent
// to) it.
func (c *Circuit) DetectorQubits() []int {
	recQubit := make([]int, 0, c.NumMeas)
	out := make([]int, 0, c.NumDetectors)
	for _, in := range c.Instructions {
		switch in.Op {
		case OpM, OpMX:
			recQubit = append(recQubit, in.Targets...)
		case OpDetector:
			q, best := -1, -1
			for _, r := range in.Recs {
				if r > best && r >= 0 && r < len(recQubit) {
					best, q = r, recQubit[r]
				}
			}
			out = append(out, q)
		}
	}
	return out
}

// String renders the whole circuit, one instruction per line.
func (c *Circuit) String() string {
	lines := make([]string, 0, len(c.Instructions))
	for _, in := range c.Instructions {
		lines = append(lines, in.String())
	}
	return strings.Join(lines, "\n")
}

// CountOps returns the number of instructions with the given opcode.
func (c *Circuit) CountOps(op OpCode) int {
	n := 0
	for _, in := range c.Instructions {
		if in.Op == op {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: target indices in range, two-qubit
// target lists of even length with distinct qubits per pair, record indices
// in range, every noise probability a number in [0,1], and deterministic
// detector/observable bookkeeping — detector indices dense and in emission
// order, observable indices within NumObs, and no annotation referencing
// the same record bit twice (a duplicate XORs itself away, silently
// decoupling the detector from that measurement). `caliqec vet` reports
// these statically, before any simulation runs.
func (c *Circuit) Validate() error {
	meas := 0
	nextDet := 0
	maxObs := -1
	prevDetRound := 0
	for i, in := range c.Instructions {
		for _, t := range in.Targets {
			if t < 0 || t >= c.NumQubits {
				return fmt.Errorf("circuit: instr %d (%s): qubit %d out of range [0,%d)", i, in.Op, t, c.NumQubits)
			}
		}
		if in.Op.IsTwoQubit() {
			if len(in.Targets)%2 != 0 {
				return fmt.Errorf("circuit: instr %d (%s): odd target count", i, in.Op)
			}
			for j := 0; j < len(in.Targets); j += 2 {
				if in.Targets[j] == in.Targets[j+1] {
					return fmt.Errorf("circuit: instr %d (%s): pair targets equal (%d)", i, in.Op, in.Targets[j])
				}
			}
		}
		switch in.Op {
		case OpM, OpMX:
			meas += len(in.Targets)
		case OpDetector, OpObservable:
			seen := make(map[int]bool, len(in.Recs))
			for _, r := range in.Recs {
				if r < 0 || r >= meas {
					return fmt.Errorf("circuit: instr %d (%s): rec %d out of range [0,%d)", i, in.Op, r, meas)
				}
				if seen[r] {
					return fmt.Errorf("circuit: instr %d (%s): rec %d referenced twice; the duplicate cancels under XOR", i, in.Op, r)
				}
				seen[r] = true
			}
			if in.Op == OpDetector {
				if in.Index != nextDet {
					return fmt.Errorf("circuit: instr %d: detector index %d, want %d (indices must be dense and in emission order)", i, in.Index, nextDet)
				}
				nextDet++
				// Detector rounds must be monotone non-decreasing in emission
				// order: the windowed decoder splits a sorted syndrome into
				// rounds with a single linear walk, which only works when the
				// detector-index order agrees with the round order. Circuits
				// without round structure have all rounds zero, which passes
				// trivially. The range check applies only when NumRounds is
				// set, tolerating hand-built literals that never call Finish.
				if in.Round < prevDetRound {
					return fmt.Errorf("circuit: instr %d: detector %d at round %d after detector at round %d (rounds must be non-decreasing)", i, in.Index, in.Round, prevDetRound)
				}
				prevDetRound = in.Round
				if c.NumRounds > 0 && in.Round >= c.NumRounds {
					return fmt.Errorf("circuit: instr %d: detector %d round %d out of range [0,%d)", i, in.Index, in.Round, c.NumRounds)
				}
			} else {
				if in.Index < 0 {
					return fmt.Errorf("circuit: instr %d: negative observable index %d", i, in.Index)
				}
				if in.Index > maxObs {
					maxObs = in.Index
				}
			}
		}
		if in.Op.IsNoise() || in.Op == OpM || in.Op == OpMX || in.Op == OpReset || in.Op == OpResetX {
			if math.IsNaN(in.Arg) || in.Arg < 0 || in.Arg > 1 {
				return fmt.Errorf("circuit: instr %d (%s): probability %g out of [0,1]", i, in.Op, in.Arg)
			}
		}
	}
	if meas != c.NumMeas {
		return fmt.Errorf("circuit: recorded %d measurements but NumMeas=%d", meas, c.NumMeas)
	}
	if nextDet != c.NumDetectors {
		return fmt.Errorf("circuit: %d detectors emitted but NumDetectors=%d", nextDet, c.NumDetectors)
	}
	if maxObs >= c.NumObs {
		return fmt.Errorf("circuit: observable index %d but NumObs=%d", maxObs, c.NumObs)
	}
	return nil
}
