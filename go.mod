module caliqec

go 1.22
