package caliqec

// One benchmark per paper table/figure (regenerating it end to end through
// internal/exp) plus micro-benchmarks of the substrates that dominate the
// Monte-Carlo experiments. The experiment index in DESIGN.md §4 maps each
// BenchmarkFig*/BenchmarkTable* to its paper artifact.

import (
	"bytes"
	"caliqec/internal/analysis"
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/dem"
	"caliqec/internal/exp"
	"caliqec/internal/fleet"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/obs"
	"caliqec/internal/rng"
	"caliqec/internal/runtime"
	"caliqec/internal/sim"
	"caliqec/internal/stream"
	"caliqec/internal/workload"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run := exp.All()[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := run(ctx, uint64(2025+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paper tables and figures ---

func BenchmarkFig1Drift(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig7Grouping(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig9Distribution(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10LERTrajectory(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Reduction(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12SpaceTime(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13RealDevice(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkTable1Instructions(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFitLERModel(b *testing.B)        { benchExperiment(b, "fit") }

// BenchmarkTable2 regenerates the full Table 2 comparison (12 rows × 3
// strategies); one iteration is the whole table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Extension experiments (DESIGN.md §4, extension table).
func BenchmarkCycleLER(b *testing.B)       { benchExperiment(b, "cycle") }
func BenchmarkAblateDecoder(b *testing.B)  { benchExperiment(b, "ablate-decoder") }
func BenchmarkAblateDeltaD(b *testing.B)   { benchExperiment(b, "ablate-deltad") }
func BenchmarkAblatePriors(b *testing.B)   { benchExperiment(b, "ablate-priors") }
func BenchmarkAblateSchedule(b *testing.B) { benchExperiment(b, "ablate-schedule") }
func BenchmarkRouting(b *testing.B)        { benchExperiment(b, "routing") }
func BenchmarkLocalizeDrift(b *testing.B)  { benchExperiment(b, "localize") }
func BenchmarkDecodeCost(b *testing.B)     { benchExperiment(b, "decode-cost") }

// BenchmarkTable2Row times a single Table 2 cell (Hubbard-10-10, d=25,
// CaliQEC) for finer-grained regression tracking.
func BenchmarkTable2Row(b *testing.B) {
	cfg := runtime.Config{Prog: workload.Hubbard(10, 10), D: 25, RetryTarget: 0.01, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Run(context.Background(), cfg, runtime.StrategyCaliQEC); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func memoryCircuit(b *testing.B, d int) *code.Patch {
	b.Helper()
	return code.NewPatch(lattice.NewSquare(d))
}

// BenchmarkFrameSampler measures Monte-Carlo throughput: shots per second
// of a d=5 memory circuit.
func BenchmarkFrameSampler(b *testing.B) {
	p := memoryCircuit(b, 5)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 5, Basis: lattice.BasisZ, Noise: code.UniformNoise(1e-3)})
	if err != nil {
		b.Fatal(err)
	}
	fs := sim.NewFrameSimulator(c, rng.New(1))
	const shotsPerOp = 6400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Sample(shotsPerOp, func(sim.BatchResult) {})
	}
	b.ReportMetric(float64(shotsPerOp)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

// BenchmarkDEMExtraction measures circuit→DEM lowering for a d=5 circuit.
func BenchmarkDEMExtraction(b *testing.B) {
	p := memoryCircuit(b, 5)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 5, Basis: lattice.BasisZ, Noise: code.UniformNoise(1e-3)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dem.FromCircuit(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnionFindDecode measures decoding throughput on realistic d=5
// syndromes.
func BenchmarkUnionFindDecode(b *testing.B) {
	p := memoryCircuit(b, 5)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 5, Basis: lattice.BasisZ, Noise: code.UniformNoise(2e-3)})
	if err != nil {
		b.Fatal(err)
	}
	m, err := dem.FromCircuit(c)
	if err != nil {
		b.Fatal(err)
	}
	g, err := decoder.BuildGraph(m)
	if err != nil {
		b.Fatal(err)
	}
	dec := decoder.NewUnionFind(g)
	// Pre-draw syndromes.
	fs := sim.NewFrameSimulator(c, rng.New(3))
	var syndromes [][]int
	fs.Sample(640, func(res sim.BatchResult) {
		for s := 0; s < res.Shots; s++ {
			var syn []int
			for di := range res.Detectors {
				if res.Detectors[di][s/64]>>uint(s%64)&1 == 1 {
					syn = append(syn, di)
				}
			}
			syndromes = append(syndromes, syn)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syndromes[i%len(syndromes)])
	}
}

// BenchmarkGreedyDecode benchmarks the MWPM-style baseline decoder.
func BenchmarkGreedyDecode(b *testing.B) {
	p := memoryCircuit(b, 3)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(2e-3)})
	if err != nil {
		b.Fatal(err)
	}
	m, err := dem.FromCircuit(c)
	if err != nil {
		b.Fatal(err)
	}
	g, err := decoder.BuildGraph(m)
	if err != nil {
		b.Fatal(err)
	}
	dec := decoder.NewGreedy(g)
	syn := []int{1, 4, 7, 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(syn)
	}
}

// BenchmarkEngineCachedSweep compares a parameter sweep that re-evaluates
// the same circuit through a cold engine (fresh cache every iteration, so
// every Evaluate pays DEM extraction + graph construction) against the warm
// path (shared engine, cache hit). The gap is the amortized setup cost the
// mc engine's fingerprint cache saves across sweeps like FitLERModel.
func BenchmarkEngineCachedSweep(b *testing.B) {
	p := memoryCircuit(b, 5)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 5, Basis: lattice.BasisZ, Noise: code.UniformNoise(2e-3)})
	if err != nil {
		b.Fatal(err)
	}
	spec := func(i int) mc.Spec {
		return mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: 256, Rounds: 5, RNG: rng.New(uint64(i + 1)),
		}
	}
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mc.New(mc.Options{}).Evaluate(ctx, spec(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := mc.New(mc.Options{})
		if _, err := eng.Evaluate(ctx, spec(0)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Evaluate(ctx, spec(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineBatchSweep measures the tentpole batching win: an 8-patch
// parameter sweep (8 structurally distinct d=3 circuits at different noise
// levels) evaluated one spec at a time versus as one EvaluateBatch over the
// shared chunk scheduler. "cold" pays DEM extraction + graph construction
// per circuit (fresh engine each iteration); "warm" isolates the steady
// state (caches primed, simulator/decoder pools populated), where allocs/op
// is the number to watch. CI asserts batch-cold beats sequential-cold by at
// least 1.3× (scripts/bench_mc.sh).
func BenchmarkEngineBatchSweep(b *testing.B) {
	const (
		patches = 8
		shots   = 4096
	)
	specs := make([]mc.Spec, patches)
	for i := 0; i < patches; i++ {
		p := memoryCircuit(b, 3)
		noise := 1.5e-3 + 0.5e-3*float64(i)
		c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(noise)})
		if err != nil {
			b.Fatal(err)
		}
		// Seed (not RNG) keeps the specs reusable across b.N iterations.
		specs[i] = mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: shots, Rounds: 3, Seed: uint64(i + 1),
		}
	}
	ctx := context.Background()
	sequential := func(b *testing.B, eng *mc.Engine) {
		for _, s := range specs {
			if _, err := eng.Evaluate(ctx, s); err != nil {
				b.Fatal(err)
			}
		}
	}
	batch := func(b *testing.B, eng *mc.Engine) {
		if _, err := eng.EvaluateBatch(ctx, specs); err != nil {
			b.Fatal(err)
		}
	}
	for _, bench := range []struct {
		name string
		run  func(*testing.B, *mc.Engine)
	}{
		{"sequential-cold", sequential},
		{"batch-cold", batch},
		{"sequential-warm", sequential},
		{"batch-warm", batch},
	} {
		warm := bench.name == "sequential-warm" || bench.name == "batch-warm"
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			if warm {
				eng := mc.New(mc.Options{})
				bench.run(b, eng) // prime caches and pools
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.run(b, eng)
				}
				return
			}
			for i := 0; i < b.N; i++ {
				bench.run(b, mc.New(mc.Options{}))
			}
		})
	}
}

// BenchmarkStreamReplay measures the trace replay path end to end on a
// recorded d=3 trace: "read" is pure framing (parse + CRC, no decode),
// "serial" adds single-threaded FrameDecoder scoring on top of it,
// "pipeline" is the production stream.Replay worker pipeline, and
// "windowed" decodes the same frames through a sliding 3-round window,
// timing every IngestRound, and "estimator" is the pipeline with the drift
// monitor enabled. CI asserts the pipeline does not regress below the
// serial baseline, that the windowed per-round p99 latency stays under
// budget, and that the estimator costs at most a bounded fraction of
// pipeline throughput (scripts/bench_mc.sh, BENCH_stream.json); frames/s
// is the throughput trajectory number.
func BenchmarkStreamReplay(b *testing.B) {
	p := memoryCircuit(b, 3)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		b.Fatal(err)
	}
	spec := mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: 4096, Rounds: 3, Seed: 11}
	var buf bytes.Buffer
	if _, err := stream.Record(context.Background(), spec, &buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	fd, err := mc.New(mc.Options{}).FrameDecoder(c, decoder.KindUnionFind)
	if err != nil {
		b.Fatal(err)
	}
	frames := spec.Shots
	reportRate := func(b *testing.B) {
		b.ReportMetric(float64(frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
	ctx := context.Background()

	b.Run("read", func(b *testing.B) {
		b.ReportAllocs()
		var f stream.Frame
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			for {
				if err := r.Next(&f); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
		reportRate(b)
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		var f stream.Frame
		syn := make([]int, 0, c.NumDetectors)
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			failures := 0
			for {
				if err := r.Next(&f); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				syn = f.Syndrome(syn[:0])
				if fd.ScoreFrame(syn, f.Obs) {
					failures++
				}
			}
			if failures == 0 {
				b.Fatal("benchmark vacuous: no failures in the recorded trace")
			}
		}
		reportRate(b)
	})
	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			stats, err := stream.Replay(ctx, r, fd, stream.PipelineOptions{Metrics: obs.Discard})
			if err != nil {
				b.Fatal(err)
			}
			if stats.Frames != frames {
				b.Fatalf("replayed %d frames, want %d", stats.Frames, frames)
			}
		}
		reportRate(b)
	})
	// Sliding-window decoding over the same trace, with every IngestRound
	// timed individually. round_p99_ns is the per-round decode latency the
	// bounded-latency contract is about: the p99 across all rounds of all
	// frames must stay under the budget scripts/bench_mc.sh enforces.
	b.Run("windowed", func(b *testing.B) {
		b.ReportAllocs()
		m, err := dem.FromCircuit(c)
		if err != nil {
			b.Fatal(err)
		}
		g, err := decoder.BuildGraph(m)
		if err != nil {
			b.Fatal(err)
		}
		const window = 3
		w, err := decoder.NewWindowed(g, window)
		if err != nil {
			b.Fatal(err)
		}
		// Pre-split every frame into per-round syndromes so the timed loop
		// measures ingest+decode, not trace parsing.
		r, err := stream.NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var frameRounds [][][]int
		var f stream.Frame
		for {
			if err := r.Next(&f); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			syn := f.Syndrome(nil)
			rounds := make([][]int, g.NumRounds)
			i := 0
			for rr := 0; rr < g.NumRounds; rr++ {
				j := i
				for j < len(syn) && g.NodeRound[syn[j]] == rr {
					j++
				}
				rounds[rr] = syn[i:j]
				i = j
			}
			frameRounds = append(frameRounds, rounds)
		}
		var lat obs.Histogram
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, rounds := range frameRounds {
				w.Reset()
				for _, rs := range rounds {
					t0 := time.Now()
					if err := w.IngestRound(rs); err != nil {
						b.Fatal(err)
					}
					lat.Observe(time.Since(t0).Nanoseconds())
				}
				_ = w.Flush()
			}
		}
		b.StopTimer()
		reportRate(b)
		b.ReportMetric(lat.Quantile(0.99), "round_p99_ns")
	})
	// The estimator variant re-runs the pipeline with drift monitoring on:
	// the ns/op delta against "pipeline" is the estimator overhead the CI
	// budget in scripts/bench_mc.sh bounds.
	b.Run("estimator", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := stream.NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			stats, err := stream.Replay(ctx, r, fd, stream.PipelineOptions{
				Metrics:   obs.Discard,
				Estimator: stream.EstimatorConfig{Window: 256},
			})
			if err != nil {
				b.Fatal(err)
			}
			if stats.Frames != frames {
				b.Fatalf("replayed %d frames, want %d", stats.Frames, frames)
			}
		}
		reportRate(b)
	})
}

// BenchmarkFleetServe drives the multi-tenant decode fleet end to end over
// loopback TCP: per op, 256 concurrent clients stream a recorded d=3 trace
// across 4 tenants through one shared worker pool. Frames per stream stays
// under the stream-queue bound, so admission is deterministic and nothing
// sheds — every sent frame is decoded. frames/s is the aggregate decode
// throughput; fleet_p99_ns is the p99 of the pool's per-frame decode-latency
// histogram, the SLO number scripts/bench_mc.sh gates in BENCH_stream.json
// (fleet_p99_budget_ns).
func BenchmarkFleetServe(b *testing.B) {
	const (
		streams = 256
		frames  = 512
		tenants = 4
	)
	p := memoryCircuit(b, 3)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 3, Basis: lattice.BasisZ, Noise: code.UniformNoise(3e-3)})
	if err != nil {
		b.Fatal(err)
	}
	spec := mc.Spec{Circuit: c, Decoder: decoder.KindUnionFind, Shots: frames, Rounds: 3, Seed: 17}
	var buf bytes.Buffer
	if _, err := stream.Record(context.Background(), spec, &buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	hr, err := stream.NewReader(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	// One trace per tenant: same frame bytes, re-encoded header tenant.
	traces := make([][]byte, tenants)
	for i := range traces {
		h := hr.Header()
		h.Tenant = uint32(1 + i)
		var hb bytes.Buffer
		if _, err := stream.NewWriter(&hb, h); err != nil {
			b.Fatal(err)
		}
		traces[i] = append(hb.Bytes(), raw[hb.Len():]...)
	}
	fd, err := mc.New(mc.Options{}).FrameDecoder(c, decoder.KindUnionFind)
	if err != nil {
		b.Fatal(err)
	}

	reg := obs.NewRegistry(nil)
	srv := fleet.NewServer(fleet.Config{StreamQueue: frames, Metrics: reg},
		func(stream.Header) (stream.FrameScorer, error) { return fd, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	addr := ln.Addr().String()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, streams)
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errs[s] = err
					return
				}
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(2 * time.Minute))
				sum, err := stream.SendTrace(conn.(*net.TCPConn), bytes.NewReader(traces[s%tenants]))
				if err != nil {
					errs[s] = err
				} else if sum.Frames != frames || sum.Shed != 0 {
					errs[s] = fmt.Errorf("stream %d: %d admitted / %d shed, want %d / 0", s, sum.Frames, sum.Shed, frames)
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	cancel()
	if err := <-served; err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(streams*frames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(reg.Histogram("fleet.decode.latency").Quantile(0.99), "fleet_p99_ns")
}

// BenchmarkIsolateReintegrate measures one full isolation/reintegration
// deformation cycle on a d=7 square patch.
func BenchmarkIsolateReintegrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := code.NewPatch(lattice.NewSquare(7))
		d := deform.NewDeformer(p)
		q := p.Lat.DataID[[2]int{3, 3}]
		if _, err := d.IsolateQubit(q, "bench"); err != nil {
			b.Fatal(err)
		}
		if err := d.Reintegrate("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatchDistance measures matching-graph distance computation.
func BenchmarkPatchDistance(b *testing.B) {
	p := code.NewPatch(lattice.NewSquare(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Distance(lattice.BasisX) != 11 {
			b.Fatal("wrong distance")
		}
	}
}

// BenchmarkTableauRound measures the exact reference simulator on one d=3
// syndrome round.
func BenchmarkTableauRound(b *testing.B) {
	p := memoryCircuit(b, 3)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 1, Basis: lattice.BasisZ})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunNoiseless(c, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline runs the full public-API pipeline (characterize,
// compile, one runtime interval) on a d=5 system.
func BenchmarkPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(Square, 5, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		plan, err := sys.Compile(sys.Characterize(), 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunInterval(plan, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead isolates the cost of the observability layer on the
// hot cached-sweep path: the same warm-engine Evaluate loop as
// BenchmarkEngineCachedSweep, once with metrics discarded (nil handles,
// every record a no-op) and once recording into a live registry. CI asserts
// the live path stays within 5% of the discard path — the budget the obs
// layer is allowed to cost a sweep.
func BenchmarkObsOverhead(b *testing.B) {
	p := memoryCircuit(b, 5)
	c, err := p.MemoryCircuit(code.MemoryOptions{Rounds: 5, Basis: lattice.BasisZ, Noise: code.UniformNoise(2e-3)})
	if err != nil {
		b.Fatal(err)
	}
	spec := func(i int) mc.Spec {
		return mc.Spec{
			Circuit: c, Decoder: decoder.KindUnionFind,
			Shots: 256, Rounds: 5, RNG: rng.New(uint64(i + 1)),
		}
	}
	ctx := context.Background()
	warm := func(b *testing.B, reg *obs.Registry) {
		eng := mc.New(mc.Options{Metrics: reg})
		if _, err := eng.Evaluate(ctx, spec(0)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Evaluate(ctx, spec(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("discard", func(b *testing.B) { warm(b, obs.Discard) })
	b.Run("recording", func(b *testing.B) { warm(b, obs.NewRegistry(nil)) })
}

// BenchmarkLintRepo times one full caliqec-lint pass — load, type-check and
// all analysis rules (CFG construction and dataflow included) over the whole
// module. One op is exactly what the CI lint step pays; the budget in
// scripts/bench_mc.sh keeps the flow-sensitive rule pack from turning the
// lint gate into the slowest job in the pipeline. A nonzero finding count
// fails the benchmark, so the perf gate doubles as a repo-clean check.
func BenchmarkLintRepo(b *testing.B) {
	rules := analysis.AllRules()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		if diags := analysis.Run(pkgs, rules); len(diags) != 0 {
			b.Fatalf("lint found %d violation(s), first: %s", len(diags), diags[0])
		}
	}
}
