// Heavy-hexagon deformation walk-through: applies each instruction of the
// heavy-hex CaliQEC instruction set (paper §6.1, Fig. 8) to a distance-5
// patch and prints the resulting gauge/super-stabilizer structure, then
// reintegrates and verifies the patch is pristine again.
//
//	go run ./examples/heavyhex
package main

import (
	"caliqec/internal/code"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"fmt"
	"log"
)

func describe(p *code.Patch) {
	supers, gauges := 0, 0
	for _, c := range p.Checks {
		if c.IsSuper() {
			supers++
		}
		gauges += len(c.Gauges)
	}
	fmt.Printf("  %d checks (%d super-stabilizers), %d gauge operators, distance (%d, %d)\n",
		len(p.Checks), supers, gauges,
		p.Distance(lattice.BasisX), p.Distance(lattice.BasisZ))
}

func main() {
	lat := lattice.NewHeavyHex(5)
	fmt.Printf("heavy-hex d=5: %d qubits (%d data), %d plaquettes\n",
		lat.NumQubits(), lat.NumData(), len(lat.Plaquettes))
	fmt.Printf("instruction set: %v\n\n", deform.InstructionSet(lattice.HeavyHex))

	// Locate an interior plaquette with a full 7-ancilla bridge:
	// Bridge = [qa qb qc qd qe qf qg] in the paper's labelling.
	var bridge []int
	for _, pl := range lat.Plaquettes {
		if pl.CellRow == 2 && pl.CellCol == 2 && len(pl.Bridge) == 7 {
			bridge = pl.Bridge
		}
	}
	if bridge == nil {
		log.Fatal("no interior bridge found")
	}

	steps := []struct {
		name   string
		target int
		expect string
	}{
		{"AncQ_RM_HorDeg2 (qd, plaquette middle)", bridge[3],
			"s0 → gauges X{1,2}·X{3,4}; west/east Z neighbours merge into g2·g3"},
		{"AncQ_RM_VerDeg2 (qb, shared segment)", bridge[1],
			"X-super X1·s0'·s1 and Z-super Z2·g1'·g2 (Fig. 8d)"},
		{"AncQ_RM_Deg3 (qc, data-attached)", bridge[2],
			"orphaned data qubit leaves the code as an isolated gauge qubit (Fig. 8e)"},
		{"DataQ_RM (a data qubit)", lat.DataID[[2]int{2, 2}],
			"both bases merge into super-stabilizers around the hole (Fig. 4a)"},
	}
	for _, st := range steps {
		patch := code.NewPatch(lattice.NewHeavyHex(5))
		d := deform.NewDeformer(patch)
		fmt.Printf("%s\n  paper: %s\n", st.name, st.expect)
		rec, err := d.IsolateQubit(st.target, "demo")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  applied: %v\n", rec)
		describe(d.Patch)
		if err := d.Patch.Validate(); err != nil {
			log.Fatalf("  INVALID: %v", err)
		}
		if err := d.Reintegrate("demo"); err != nil {
			log.Fatal(err)
		}
		if err := d.Patch.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reintegrated: %d checks, distance (%d, %d)\n\n",
			len(d.Patch.Checks), d.Patch.Distance(lattice.BasisX), d.Patch.Distance(lattice.BasisZ))
	}
	fmt.Println("every instruction left a valid code and reintegrated cleanly")
}
