// Hubbard: a Table-2-style evaluation of the Hubbard-10-10 quantum
// chemistry benchmark under the three calibration strategies (no
// calibration, Logical-Swap-for-Calibration, CaliQEC) at two code
// distances, printing physical qubits, execution time, calibration volume
// and retry risk.
//
//	go run ./examples/hubbard
package main

import (
	"caliqec/internal/runtime"
	"caliqec/internal/workload"
	"context"
	"fmt"
	"log"
)

func main() {
	prog := workload.Hubbard(10, 10)
	fmt.Printf("benchmark: %v\n", prog)
	fmt.Printf("paper Table 2 row (d=25): NoCal 9.81e5 qubits / 5.29 h / ~100%%;" +
		" LSC 4.65e6 / 5.74 h / 11.3%%; CaliQEC 1.53e6 / 5.29 h / 3.13%%\n\n")

	for _, cfg := range []struct {
		d      int
		target float64
	}{{25, 0.01}, {27, 0.001}} {
		fmt.Printf("d=%d (retry-risk budget %.2g):\n", cfg.d, cfg.target)
		c := runtime.Config{
			Prog:        prog,
			D:           cfg.d,
			RetryTarget: cfg.target,
			Seed:        2025,
		}
		var noCal *runtime.Result
		for _, strat := range []runtime.Strategy{
			runtime.StrategyNoCal, runtime.StrategyLSC, runtime.StrategyCaliQEC,
		} {
			res, err := runtime.Run(context.Background(), c, strat)
			if err != nil {
				log.Fatal(err)
			}
			extra := ""
			if strat == runtime.StrategyNoCal {
				noCal = res
			} else {
				extra = fmt.Sprintf("  (qubits %+.0f%%, time %+.1f%%)",
					100*(res.PhysicalQubits/noCal.PhysicalQubits-1),
					100*(res.ExecHours/noCal.ExecHours-1))
			}
			fmt.Printf("  %v%s\n", res, extra)
		}
		fmt.Println()
	}
	fmt.Println("shape to observe: no-calibration fails (~100% retry risk); LSC pays ~4x")
	fmt.Println("qubits and ~10-15% time for percent-level risk; CaliQEC reaches lower")
	fmt.Println("risk with ~12-17% extra qubits and zero time overhead.")
}
