// Driftmonitor: device characterization and drift dynamics, in the style of
// the paper's Fig. 1 / Fig. 9 / Fig. 11 component analyses.
//
//	go run ./examples/driftmonitor
//
// It synthesizes an Eagle-class heavy-hex device, watches its gates drift
// past the surface-code threshold over 24 hours, re-estimates the drift
// constants through simulated interleaved randomized benchmarking, and
// compares the calibration volume of uniform vs Algorithm-1 adaptive
// grouping over a week.
package main

import (
	"caliqec/internal/charac"
	"caliqec/internal/device"
	"caliqec/internal/lattice"
	"caliqec/internal/noise"
	"caliqec/internal/rng"
	"caliqec/internal/sched"
	"fmt"
	"log"
	"math"
	"strings"
)

func main() {
	r := rng.New(7)
	lat := lattice.NewHeavyHex(7)
	dev := device.New(lat, device.Options{}, r)
	fmt.Printf("synthetic Eagle-class device: %d qubits, %d gates, drift model %q (mean %.2f h)\n\n",
		lat.NumQubits(), len(dev.Gates), dev.Model.Name, dev.Model.MeanHours)

	// Fig. 1: fraction of gates above threshold vs time.
	fmt.Println("drift without calibration (threshold = 1%):")
	for h := 0; h <= 24; h += 4 {
		f := dev.FractionAbove(float64(h), noise.Threshold)
		bar := strings.Repeat("#", int(f*40))
		fmt.Printf("  t=%2dh  %5.1f%%  %s\n", h, 100*f, bar)
	}

	// Preparation stage: re-estimate three gates' drift laws via RB and
	// compare with the hidden ground truth.
	fmt.Println("\ninterleaved-RB drift estimation (estimate vs ground truth):")
	for _, id := range []int{0, 10, 20} {
		est := charac.EstimateDrift(dev, id, 12, r)
		truth := dev.Gate(id).Drift
		fmt.Printf("  gate %-3d T_drift: %.1f h (true %.1f h), p0: %.2g (true %.2g)\n",
			id, est.TDrift, truth.TDrift, est.P0, truth.P0)
	}

	// Fig. 11: adaptive grouping vs uniform calibration over a week.
	ch := charac.Characterize(dev, charac.Options{HorizonHours: 10}, r)
	pTar := noise.InitialErrorRate * math.Pow(10, 0.5)
	var profiles []sched.GateProfile
	for _, gc := range ch.Gates {
		p := sched.GateProfile{GateID: gc.GateID, Drift: gc.Drift, CaliHours: gc.CaliHours, Nbr: gc.Nbr}
		if p.DeadlineHours(pTar) < 7*24 {
			profiles = append(profiles, p)
		}
	}
	gr, err := sched.AssignGroups(profiles, pTar)
	if err != nil {
		log.Fatal(err)
	}
	const horizon = 7 * 24.0
	minDl := math.Inf(1)
	ideal := 0.0
	for i := range profiles {
		d := profiles[i].DeadlineHours(pTar)
		ideal += math.Floor(horizon / d)
		if d < minDl {
			minDl = d
		}
	}
	uniform := float64(len(profiles)) * math.Floor(horizon/minDl)
	adaptive := 0.0
	for k, g := range gr.Groups {
		adaptive += float64(len(g)) * math.Floor(horizon/(float64(k)*gr.TCaliHours))
	}
	fmt.Printf("\ncalibration volume over 7 days (%d gates due, T_Cali = %.2f h):\n", len(profiles), gr.TCaliHours)
	fmt.Printf("  uniform  : %6.0f operations\n", uniform)
	fmt.Printf("  adaptive : %6.0f operations (%.1fx fewer — paper reports 3.63-11.1x)\n", adaptive, uniform/adaptive)
	fmt.Printf("  ideal    : %6.0f operations (per-gate schedule)\n", ideal)
}
