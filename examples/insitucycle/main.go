// Insitucycle: the capstone demonstration — one continuous surface-code
// memory experiment that runs *through* a CaliQEC calibration cycle
// (pristine → isolate a drifting qubit via DataQ_RM → calibrate →
// reintegrate → pristine), with gauge-fixing detectors linking the epochs,
// Monte-Carlo sampled and decoded end to end.
//
//	go run ./examples/insitucycle
//
// The paper argues through the analytic Eq. (4) that deformation preserves
// error protection (Fig. 10); this example measures it directly at the
// circuit level.
package main

import (
	"caliqec/internal/code"
	"caliqec/internal/decoder"
	"caliqec/internal/deform"
	"caliqec/internal/lattice"
	"caliqec/internal/mc"
	"caliqec/internal/rng"
	"context"
	"fmt"
	"log"
)

func main() {
	const (
		d      = 5
		p      = 2e-3
		rounds = 3
		shots  = 50000
	)
	mk := func() *code.Patch { return code.NewPatch(lattice.NewSquare(d)) }

	// The deformed middle epoch: the drifting qubit's region is isolated.
	iso := mk()
	df := deform.NewDeformer(iso)
	target := iso.Lat.DataID[[2]int{2, 2}]
	rec, err := df.IsolateQubit(target, "cal")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolating qubit %d for calibration: %v\n", target, rec)
	supers := 0
	for _, c := range df.Patch.Checks {
		if c.IsSuper() {
			supers++
		}
	}
	fmt.Printf("deformed patch: %d checks (%d super-stabilizers), distance (%d, %d)\n\n",
		len(df.Patch.Checks), supers,
		df.Patch.Distance(lattice.BasisX), df.Patch.Distance(lattice.BasisZ))

	epochs := []code.Epoch{
		{Patch: mk(), Rounds: rounds},     // before calibration
		{Patch: df.Patch, Rounds: rounds}, // during: qubit isolated
		{Patch: mk(), Rounds: rounds},     // after: reintegrated
	}
	cycle, err := code.TimelineCircuit(epochs, code.TimelineOptions{
		Basis: lattice.BasisZ, Noise: code.UniformNoise(p),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timeline circuit: %d instructions, %d detectors (incl. gauge-fixing transition detectors), %d measurement bits\n",
		len(cycle.Instructions), cycle.NumDetectors, cycle.NumMeas)

	cres, err := mc.Evaluate(context.Background(), mc.Spec{
		Circuit: cycle, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3 * rounds, RNG: rng.New(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	static := mk()
	sc, err := static.MemoryCircuit(code.MemoryOptions{Rounds: 3 * rounds, Basis: lattice.BasisZ, Noise: code.UniformNoise(p)})
	if err != nil {
		log.Fatal(err)
	}
	sres, err := mc.Evaluate(context.Background(), mc.Spec{
		Circuit: sc, Decoder: decoder.KindUnionFind, Shots: shots, Rounds: 3 * rounds, RNG: rng.New(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic code (9 rounds):       %v\n", sres)
	fmt.Printf("calibration cycle (9 rounds): %v\n", cres)
	if sres.LER > 0 {
		fmt.Printf("\nthe full isolate→calibrate→reintegrate cycle costs %.2fx the static LER —\n", cres.LER/sres.LER)
		fmt.Println("in-situ calibration preserves the code's protection, measured at the circuit level.")
	}
}
