// Quickstart: the full CaliQEC pipeline on a small device in ~40 lines.
//
//	go run ./examples/quickstart
//
// It builds a distance-5 surface-code patch on a square lattice, runs
// preparation-time characterization, compiles a calibration plan, executes
// three in-situ calibration intervals against the live patch (isolate →
// enlarge → calibrate → reintegrate → shrink), and finally Monte-Carlo
// measures the logical error rate to show the code still works.
package main

import (
	"caliqec"
	"caliqec/internal/lattice"
	"fmt"
	"log"
)

func main() {
	sys, err := caliqec.NewSystem(caliqec.Square, 5, caliqec.Options{Seed: 2025})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %v lattice, distance %d, %d physical qubits, %d gates\n",
		sys.Topology, sys.Distance, sys.Device.Lat.NumQubits(), len(sys.Device.Gates))

	// Stage 1 — preparation: estimate every gate's drift law, calibration
	// duration and crosstalk neighbourhood.
	ch := sys.Characterize()
	fmt.Printf("characterized %d gates (e.g. gate 0: T_drift ≈ %.1f h, %d crosstalk neighbours)\n",
		len(ch.Gates), ch.Gates[0].Drift.TDrift, len(ch.Gates[0].Nbr))

	// Stage 2 — compilation: Algorithm 1 grouping under the LER budget.
	plan, err := sys.Compile(ch, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: p_tar = %.4g, base interval T_Cali = %.2f h, %.2f calibrations/hour\n",
		plan.PTar, plan.Grouping.TCaliHours, plan.Grouping.TotalFrequency())

	// Stage 3 — runtime: three calibration intervals, in situ.
	now := 0.0
	for n := 1; n <= 3; n++ {
		rep, err := sys.RunInterval(plan, n, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval %d: %d gates calibrated in %d batches (Δd ≤ %d, enlarged=%v)\n",
			n, rep.Calibrated, rep.Batches, rep.MaxDeltaD, rep.Enlarged)
		now += plan.Grouping.TCaliHours
	}

	// The patch survived every deformation cycle intact.
	if err := sys.Patch().Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patch valid: distance (%d, %d)\n",
		sys.Patch().Distance(lattice.BasisX), sys.Patch().Distance(lattice.BasisZ))

	res, err := sys.MeasureLER(now, 5, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory experiment after calibration: %v\n", res)
}
